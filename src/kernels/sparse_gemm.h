// CSR sparse-weight kernel — the optimizer arm for extreme-
// classification layers whose weight matrices are mostly zero (the
// Amazon-14k shape after pruning).
//
// The dense GEMM path deliberately never branches on zeros
// (kernels.h); this is the explicit sparse entry point it defers to.
// The weight is compressed once at deploy time into CSR over output
// channels (one row per channel, ascending column indices); each
// (batch row, channel) product is one ascending-index fp32 chain, so
// results are identical at any thread count and — because adding an
// exact 0.0f term is a no-op — bit-identical to a naive ascending-k
// dense dot over the original weight.

#ifndef RELSERVE_KERNELS_SPARSE_GEMM_H_
#define RELSERVE_KERNELS_SPARSE_GEMM_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "resource/thread_pool.h"
#include "tensor/tensor.h"

namespace relserve {
namespace kernels {

struct CsrWeight {
  int64_t out = 0;  // output channels (CSR rows)
  int64_t in = 0;   // contraction width (CSR columns)
  std::vector<int64_t> row_ptr;  // [out + 1]
  std::vector<int32_t> col_idx;  // [nnz], ascending per row
  std::vector<float> values;     // [nnz]

  int64_t nnz() const { return static_cast<int64_t>(values.size()); }
  double density() const {
    const int64_t total = out * in;
    return total > 0 ? static_cast<double>(nnz()) /
                           static_cast<double>(total)
                     : 0.0;
  }
  int64_t ByteSize() const {
    return static_cast<int64_t>(row_ptr.size() * sizeof(int64_t) +
                                col_idx.size() * sizeof(int32_t) +
                                values.size() * sizeof(float));
  }
};

// Fraction of exactly-nonzero entries of a [out, in] weight matrix —
// what the optimizer compares against the density threshold.
Result<double> MeasureWeightDensity(const Tensor& w);

// Deploy-time CSR compression of a [out, in] weight.
Result<CsrWeight> BuildCsrWeight(const Tensor& w);

// out[m, n] = a[m, k] * w[n, k]^T over the CSR weight. `out` must be
// preallocated [m, w.out]; `pool` may be null.
Status SparseGemmTransBInto(const Tensor& a, const CsrWeight& w,
                            Tensor* out, ThreadPool* pool = nullptr);

namespace internal {

// Inner block kernel shared with the fused top-k driver: channels
// [c0, c0 + bw) of the CSR weight against `rows` consecutive input
// rows starting at `x0` (stride `k`), written to y[r * ldy + c]. The
// activation chunk is transposed once into a [k, 8] lane-major
// scratch so every nonzero reads one contiguous 8-float vector, but
// each (row, channel) result is still the same ascending-index fp32
// mul-then-add chain as a naive dot — the bit-identity contract of
// the sparse arm.
void CsrBlockDot(const float* x0, int64_t k, int64_t rows,
                 const CsrWeight& w, int64_t c0, int64_t bw, float* y,
                 int64_t ldy);

// One channel's nonzeros against 8 transposed activation lanes:
//   acc[r] = sum_i xT[cols[i] * 8 + r] * vals[i]   (mul, then add —
// never fused, so every lane matches the scalar chain bit-for-bit).
using CsrDot8Fn = void (*)(const float* xT, const int32_t* cols,
                           const float* vals, int64_t nnz, float* acc);

// nullptr when this build/platform has no AVX2 backend.
CsrDot8Fn GetAvx2CsrDot8();

}  // namespace internal
}  // namespace kernels
}  // namespace relserve

#endif  // RELSERVE_KERNELS_SPARSE_GEMM_H_
