// AVX2 predicate strips. Compiled with -mavx2 (per-file in
// src/CMakeLists.txt, x86 only) and only entered behind the cpuid
// probe.
//
// Each step compares 4 doubles (or 4 int64s), movemasks the lane
// results, and appends the surviving sel entries with the same
// branch-free `out[m] = sel[i]; m += bit` increment as the scalar
// strip — there is no divergent control flow, so the emitted
// selection vector is bit-identical to the scalar backend's. The
// comparison predicates are chosen to match C++ operator semantics on
// every special value: _CMP_LT_OQ / _CMP_LE_OQ / _CMP_EQ_OQ are
// ordered (NaN -> false, like <, <=, ==) and _CMP_NEQ_UQ is unordered
// (NaN != 0.0 -> true, like !=).

#include "kernels/predicate_simd.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include <cmath>

namespace relserve {
namespace kernels {
namespace {

// Appends the sel entries selected by the low 4 bits of `mask`.
inline int64_t AppendMask4(int mask, const int32_t* sel, int64_t i,
                           int32_t* out, int64_t m) {
  out[m] = sel[i + 0];
  m += mask & 1;
  out[m] = sel[i + 1];
  m += (mask >> 1) & 1;
  out[m] = sel[i + 2];
  m += (mask >> 2) & 1;
  out[m] = sel[i + 3];
  m += (mask >> 3) & 1;
  return m;
}

template <int kPred>
int64_t CmpF64(const double* a, const double* b, const int32_t* sel,
               int64_t n, int32_t* out) {
  int64_t m = 0;
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d va = _mm256_loadu_pd(a + i);
    const __m256d vb = _mm256_loadu_pd(b + i);
    const int mask =
        _mm256_movemask_pd(_mm256_cmp_pd(va, vb, kPred));
    m = AppendMask4(mask, sel, i, out, m);
  }
  for (; i < n; ++i) {
    out[m] = sel[i];
    if (kPred == _CMP_LT_OQ) {
      m += a[i] < b[i];
    } else if (kPred == _CMP_LE_OQ) {
      m += a[i] <= b[i];
    } else {
      m += a[i] == b[i];
    }
  }
  return m;
}

int64_t Avx2AbsDiffLeF64(const double* a, const double* b, double eps,
                         const int32_t* sel, int64_t n, int32_t* out) {
  const __m256d sign_mask = _mm256_set1_pd(-0.0);
  const __m256d veps = _mm256_set1_pd(eps);
  int64_t m = 0;
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d diff =
        _mm256_sub_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i));
    const __m256d mag = _mm256_andnot_pd(sign_mask, diff);
    const int mask =
        _mm256_movemask_pd(_mm256_cmp_pd(mag, veps, _CMP_LE_OQ));
    m = AppendMask4(mask, sel, i, out, m);
  }
  for (; i < n; ++i) {
    out[m] = sel[i];
    m += std::fabs(a[i] - b[i]) <= eps;
  }
  return m;
}

int64_t Avx2EqI64(const int64_t* a, const int64_t* b,
                  const int32_t* sel, int64_t n, int32_t* out) {
  int64_t m = 0;
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const int mask = _mm256_movemask_pd(
        _mm256_castsi256_pd(_mm256_cmpeq_epi64(va, vb)));
    m = AppendMask4(mask, sel, i, out, m);
  }
  for (; i < n; ++i) {
    out[m] = sel[i];
    m += a[i] == b[i];
  }
  return m;
}

int64_t Avx2NonzeroF64(const double* v, const int32_t* sel, int64_t n,
                       int32_t* out) {
  const __m256d zero = _mm256_setzero_pd();
  int64_t m = 0;
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const int mask = _mm256_movemask_pd(
        _mm256_cmp_pd(_mm256_loadu_pd(v + i), zero, _CMP_NEQ_UQ));
    m = AppendMask4(mask, sel, i, out, m);
  }
  for (; i < n; ++i) {
    out[m] = sel[i];
    m += v[i] != 0.0;
  }
  return m;
}

constexpr PredicateKernels kAvx2PredicateKernels = {
    SimdLevel::kAvx2,
    CmpF64<_CMP_LT_OQ>,
    CmpF64<_CMP_LE_OQ>,
    CmpF64<_CMP_EQ_OQ>,
    Avx2AbsDiffLeF64,
    Avx2EqI64,
    Avx2NonzeroF64,
};

}  // namespace

const PredicateKernels* GetAvx2PredicateKernels() {
  return &kAvx2PredicateKernels;
}

}  // namespace kernels
}  // namespace relserve

#else  // !__AVX2__: non-x86 target or flags not applied

namespace relserve {
namespace kernels {

const PredicateKernels* GetAvx2PredicateKernels() { return nullptr; }

}  // namespace kernels
}  // namespace relserve

#endif
