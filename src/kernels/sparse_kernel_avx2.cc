// AVX2 CSR lane kernel. Compiled with -mavx2 (per-file in
// src/CMakeLists.txt, x86 only) and only entered behind the cpuid
// probe.
//
// One channel's nonzeros against 8 transposed activation lanes: each
// nonzero is one contiguous 8-float load, one broadcast, one multiply
// and one add. The multiply and add are separate instructions on
// purpose — fusing them (FMA) would skip the intermediate rounding and
// break the sparse arm's bit-identity contract with the scalar
// mul-then-add chain. This TU therefore requests only -mavx2, not
// -mfma.

#include "kernels/sparse_gemm.h"

#if defined(__AVX2__)

#include <immintrin.h>

namespace relserve {
namespace kernels {
namespace {

void Avx2CsrDot8(const float* xT, const int32_t* cols,
                 const float* vals, int64_t nnz, float* acc) {
  __m256 sum = _mm256_setzero_ps();
  for (int64_t i = 0; i < nnz; ++i) {
    const __m256 lane =
        _mm256_loadu_ps(xT + static_cast<int64_t>(cols[i]) * 8);
    const __m256 wv = _mm256_set1_ps(vals[i]);
    sum = _mm256_add_ps(sum, _mm256_mul_ps(lane, wv));
  }
  _mm256_storeu_ps(acc, sum);
}

}  // namespace

namespace internal {

CsrDot8Fn GetAvx2CsrDot8() { return Avx2CsrDot8; }

}  // namespace internal
}  // namespace kernels
}  // namespace relserve

#else  // !__AVX2__: non-x86 target or flags not applied

namespace relserve {
namespace kernels {
namespace internal {

CsrDot8Fn GetAvx2CsrDot8() { return nullptr; }

}  // namespace internal
}  // namespace kernels
}  // namespace relserve

#endif
