#include "kernels/cpu_features.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace relserve {
namespace kernels {

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kAvx2:
      return "avx2";
  }
  return "?";
}

SimdLevel DetectSimdLevel() {
#if defined(__x86_64__) || defined(__i386__)
  // __builtin_cpu_supports consults cpuid once at program start and
  // includes the OSXSAVE/XCR0 check, so "avx2" only reports true when
  // the OS actually saves ymm state across context switches.
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return SimdLevel::kAvx2;
  }
#endif
  return SimdLevel::kScalar;
}

namespace {

SimdLevel ClampToHardware(SimdLevel requested) {
  return (requested == SimdLevel::kAvx2 &&
          DetectSimdLevel() != SimdLevel::kAvx2)
             ? SimdLevel::kScalar
             : requested;
}

SimdLevel ResolveInitialLevel() {
  const char* env = std::getenv("RELSERVE_SIMD");
  if (env != nullptr && std::strcmp(env, "scalar") == 0) {
    return SimdLevel::kScalar;
  }
  if (env != nullptr && std::strcmp(env, "avx2") == 0) {
    return ClampToHardware(SimdLevel::kAvx2);
  }
  return DetectSimdLevel();
}

std::atomic<SimdLevel>& ActiveLevelStorage() {
  static std::atomic<SimdLevel> level{ResolveInitialLevel()};
  return level;
}

}  // namespace

SimdLevel ActiveSimdLevel() {
  return ActiveLevelStorage().load(std::memory_order_relaxed);
}

SimdLevel SetActiveSimdLevel(SimdLevel level) {
  const SimdLevel installed = ClampToHardware(level);
  ActiveLevelStorage().store(installed, std::memory_order_relaxed);
  return installed;
}

}  // namespace kernels
}  // namespace relserve
