// Runtime CPU-dispatch policy for the kernel substrate.
//
// The default build carries no -march flags: every translation unit
// except the AVX2 backend compiles for the baseline ISA, and the one
// AVX2+FMA translation unit is only *entered* after a cpuid probe says
// the host executes those instructions. The level is resolved once on
// first use and cached; benches and tests may override it to compare
// code paths on the same machine.

#ifndef RELSERVE_KERNELS_CPU_FEATURES_H_
#define RELSERVE_KERNELS_CPU_FEATURES_H_

namespace relserve {
namespace kernels {

enum class SimdLevel {
  kScalar,  // portable fallback, correct on any hardware
  kAvx2,    // 256-bit FMA micro-kernels (x86 with AVX2+FMA+OS support)
};

const char* SimdLevelName(SimdLevel level);

// Raw hardware probe (cpuid on x86, kScalar elsewhere). Ignores the
// environment override and the cached active level.
SimdLevel DetectSimdLevel();

// The level all kernels dispatch on. Resolved once: hardware probe,
// then the RELSERVE_SIMD environment variable ("scalar" forces the
// fallback; "avx2" requests the vector path but silently degrades to
// scalar when the probe says the hardware cannot run it).
SimdLevel ActiveSimdLevel();

// Test/bench hook: pins the active level from now on. Requests the
// hardware cannot satisfy degrade to kScalar; returns the level
// actually installed.
SimdLevel SetActiveSimdLevel(SimdLevel level);

}  // namespace kernels
}  // namespace relserve

#endif  // RELSERVE_KERNELS_CPU_FEATURES_H_
