// Portable scalar micro-kernel backend — the guaranteed-correct
// fallback for hardware without AVX2+FMA (and the reference point for
// the dispatch tests). The compiler may auto-vectorize these loops
// with whatever the baseline ISA offers; that never changes results
// because every output element keeps its own independent ascending-k
// accumulation chain and the baseline target has no FMA contraction.

#include <algorithm>

#include "kernels/micro_kernel.h"

namespace relserve {
namespace kernels {
namespace internal {
namespace {

// Generic tile: rows [0, m_r) x cols [0, n_r), m_r <= kMr, n_r <= kNr.
// Accumulates directly from the existing C values (or from zero), so
// the per-element float chain is exactly the historical
//   c = ((c0 + a0*b0) + a1*b1) + ...
// no matter how many kc blocks the driver splits k into.
void ScalarTileEdge(int64_t kc, const float* a_panel,
                    const float* b_panel, float* c, int64_t ldc,
                    bool accumulate, int64_t m_r, int64_t n_r) {
  // One accumulator row at a time (kNr floats fit the baseline vector
  // registers, so the j-loop auto-vectorizes without spilling; a full
  // kMr x kNr accumulator block would not).
  for (int64_t i = 0; i < m_r; ++i) {
    float acc[kNr];
    float* c_row = c + i * ldc;
    for (int64_t j = 0; j < n_r; ++j) {
      acc[j] = accumulate ? c_row[j] : 0.0f;
    }
    for (int64_t p = 0; p < kc; ++p) {
      const float a_ip = a_panel[p * kMr + i];
      const float* b = b_panel + p * kNr;
      for (int64_t j = 0; j < n_r; ++j) {
        acc[j] += a_ip * b[j];
      }
    }
    for (int64_t j = 0; j < n_r; ++j) c_row[j] = acc[j];
  }
}

// Full tile: same row-at-a-time shape with compile-time bounds.
void ScalarTile(int64_t kc, const float* a_panel, const float* b_panel,
                float* c, int64_t ldc, bool accumulate) {
  for (int64_t i = 0; i < kMr; ++i) {
    float acc[kNr];
    float* c_row = c + i * ldc;
    if (accumulate) {
      for (int64_t j = 0; j < kNr; ++j) acc[j] = c_row[j];
    } else {
      for (int64_t j = 0; j < kNr; ++j) acc[j] = 0.0f;
    }
    for (int64_t p = 0; p < kc; ++p) {
      const float a_ip = a_panel[p * kMr + i];
      const float* b = b_panel + p * kNr;
      for (int64_t j = 0; j < kNr; ++j) {
        acc[j] += a_ip * b[j];
      }
    }
    for (int64_t j = 0; j < kNr; ++j) c_row[j] = acc[j];
  }
}

void ScalarRelu(float* x, int64_t n) {
  for (int64_t i = 0; i < n; ++i) x[i] = std::max(x[i], 0.0f);
}

void ScalarAdd(float* a, const float* b, int64_t n) {
  for (int64_t i = 0; i < n; ++i) a[i] += b[i];
}

void ScalarScale(float* x, float s, int64_t n) {
  for (int64_t i = 0; i < n; ++i) x[i] *= s;
}

float ScalarRowMax(const float* x, int64_t n) {
  float m = x[0];
  for (int64_t i = 1; i < n; ++i) m = std::max(m, x[i]);
  return m;
}

constexpr KernelBackend kScalarBackend = {
    SimdLevel::kScalar, ScalarTile,  ScalarTileEdge, ScalarRelu,
    ScalarAdd,          ScalarScale, ScalarRowMax,
};

}  // namespace

const KernelBackend* GetScalarBackend() { return &kScalarBackend; }

}  // namespace internal
}  // namespace kernels
}  // namespace relserve
