// Int8 quantized GEMM path — the deploy-time-quantized kernel arm.
//
// Scheme (chosen so the scalar and AVX2 backends are bit-for-bit
// identical and the AVX2 `maddubs` pipeline can never saturate):
//
//   weights     per-output-channel symmetric int8:
//                 scale_w[o] = maxabs(W[o, :]) / 127
//                 q_w = clamp(round(w / scale_w), -127, 127)
//   activations per-row dynamic 7-bit symmetric, shifted unsigned:
//                 scale_a[r] = maxabs(x[r, :]) / 63
//                 q_a = round(clamp(x / scale_a, -63, 63)) + 64
//               (round to nearest, ties to even — the SSE cvt
//               rounding, so the vectorized quantizer and its scalar
//               tail agree exactly)
//               so q_a in [1, 127] fits u8 with |pair products|
//               bounded by 2 * 127 * 127 = 32258 < 2^15 — the i16
//               stage of _mm256_maddubs_epi16 cannot saturate.
//   dot         acc = sum q_a * q_w  (exact integer, any order)
//               true = acc - 64 * row_sum_w   (the +64 shift folds
//               into a per-channel constant precomputed at deploy)
//   dequant     out = float(true) * (scale_a[r] * scale_w[o])
//
// Integer accumulation is associative, so the scalar backend and the
// AVX2 maddubs backend produce the SAME int64 accumulator for every
// (row, channel) pair regardless of vectorization or thread count;
// the float dequantization happens once in the shared driver. That
// makes scalar-int8 == AVX2-int8 a bit-for-bit test invariant (unlike
// the fp32 path, where FMA rounding differs by design).
//
// Both operand buffers are padded to a multiple of 32 in k: activation
// padding quantizes to the shifted zero (64), weight padding to 0, so
// padded lanes contribute exactly 0 to every accumulator.

#ifndef RELSERVE_KERNELS_INT8_GEMM_H_
#define RELSERVE_KERNELS_INT8_GEMM_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "kernels/cpu_features.h"
#include "resource/thread_pool.h"
#include "tensor/tensor.h"

namespace relserve {
namespace kernels {

// RELSERVE_QUANTIZE override for the quantized arm, mirroring
// RELSERVE_SIMD: "int8" force-enables it for every eligible matmul,
// "off" (or "fp32") disables it even where the optimizer asked for it,
// unset leaves the optimizer's per-node decision in charge.
enum class QuantizeMode {
  kAuto,  // follow the optimizer's per-node decision
  kInt8,  // force the quantized arm on every eligible matmul
  kOff,   // force the fp32 arm everywhere
};

const char* QuantizeModeName(QuantizeMode mode);

// Resolved once from RELSERVE_QUANTIZE on first use, then cached.
QuantizeMode ActiveQuantizeMode();

// Test/bench hook: pins the active mode from now on.
QuantizeMode SetActiveQuantizeMode(QuantizeMode mode);

// A matmul weight quantized once at deploy time. Layout matches the
// dense weight convention W[out, in] (x * W^T); rows are stored
// contiguously, padded to `padded_in` (multiple of 32) with zeros.
struct Int8Weight {
  int64_t out = 0;
  int64_t in = 0;
  int64_t padded_in = 0;
  std::vector<int8_t> data;     // [out, padded_in]
  std::vector<float> scales;    // [out] per-output-channel scale
  std::vector<int64_t> row_sums;  // [out] sum of q_w over the real k
                                  // (the +64 activation-shift term)

  int64_t ByteSize() const {
    return static_cast<int64_t>(data.size()) +
           static_cast<int64_t>(scales.size() * sizeof(float)) +
           static_cast<int64_t>(row_sums.size() * sizeof(int64_t));
  }
};

// Deploy-time per-output-channel quantization of a [out, in] weight.
Result<Int8Weight> QuantizeWeightPerChannel(const Tensor& w);

// Quantizes one activation row to the shifted-u7 grid. `q` must hold
// `padded` bytes (padded >= k, multiple of 32); padding is written as
// the shifted zero (64). Returns the row scale.
float QuantizeRowU7(const float* x, int64_t k, int64_t padded,
                    uint8_t* q);

// out[m, n] = a[m, k] * dequant(w)[n, k]^T with per-row dynamic input
// quantization. `out` must be preallocated [m, w.out]; `pool` may be
// null. Results are identical at any thread count and any SIMD level.
Status Int8GemmTransBInto(const Tensor& a, const Int8Weight& w,
                          Tensor* out, ThreadPool* pool = nullptr);

namespace internal {

// One ISA's int8 block kernel. Computes a strip of FINAL dequantized
// outputs in one call:
//   dot       = sum_p a[r * lda + p] * w[c * ldw + p]   (exact int)
//   true_acc  = dot - 64 * row_sums[c]
//   out[r * ldo + c] = float(true_acc) * (a_scales[r] * w_scales[c])
// for r in [0, rows), c in [0, chans), over the padded contraction
// length kp (multiple of 32).
//
// The strip-granular call (whole channel range per row quad, not a
// 4x2 tile) exists for throughput: at serving-size k the per-tile
// epilogue — call, horizontal reduction, dequant — would otherwise
// rival the k-loop itself. Bit-identity across backends still holds
// because the integer dot is exact and the dequant is the same
// per-element float expression: one (scale_a * scale_w) product, one
// int-to-float conversion (IEEE-exact for any i64 the scheme can
// produce at a representable magnitude — both backends convert the
// same integer), one multiply.
struct Int8Backend {
  SimdLevel level;
  const char* name;  // self-description for benches/EXPLAIN
  void (*gemm_block)(const uint8_t* a, int64_t lda, int64_t rows,
                     const int8_t* w, int64_t ldw, int64_t chans,
                     int64_t kp, const float* a_scales,
                     const float* w_scales, const int64_t* row_sums,
                     float* out, int64_t ldo);
};

const Int8Backend* GetScalarInt8Backend();
// nullptr when this build/platform has no AVX2 backend.
const Int8Backend* GetAvx2Int8Backend();
// VEX-encoded AVX-VNNI (vpdpbusd) upgrade of the AVX2 backend:
// nullptr unless both the build and the running CPU support it. The
// accumulators it produces are the same exact integers, so it slots
// under the kAvx2 dispatch level interchangeably.
const Int8Backend* GetVnniInt8Backend();

inline const Int8Backend* GetInt8Backend(SimdLevel level) {
  if (level == SimdLevel::kAvx2) {
    const Int8Backend* vnni = GetVnniInt8Backend();
    if (vnni != nullptr) return vnni;
    const Int8Backend* avx2 = GetAvx2Int8Backend();
    if (avx2 != nullptr) return avx2;
  }
  return GetScalarInt8Backend();
}

}  // namespace internal
}  // namespace kernels
}  // namespace relserve

#endif  // RELSERVE_KERNELS_INT8_GEMM_H_
