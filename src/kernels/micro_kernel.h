// Internal micro-kernel backend interface for the packed GEMM layer
// and the vectorized elementwise strips.
//
// Layering (GotoBLAS-style):
//
//   kernels.cc           public API, shape checks
//     gemm_packed.cc     cache blocking (mc, kc, nc), panel packing,
//                        ThreadPool parallelism over macro-tiles
//       micro_kernel_*   one register-tiled inner kernel per ISA,
//                        selected at runtime via cpu_features
//
// The packed operand layout is fixed across backends so the blocking
// driver and the pack routines are ISA-independent:
//
//   A panel  (kMr-tall row slivers):  a_panel[p * kMr + i] = A[i, p]
//   B panel  (kNr-wide column slivers): b_panel[p * kNr + j] = B[p, j]
//
// with i < kMr, j < kNr zero-padded past the matrix edge, p < kc. A
// micro-kernel call computes the full kMr x kNr register tile
//   C[i, j] ⊕= Σ_p a_panel[p*kMr+i] * b_panel[p*kNr+j]
// accumulating directly into C in ascending-p order (⊕ is += when
// `accumulate`, otherwise the chain starts from 0). Keeping the
// per-element accumulation a single ascending-k chain makes the
// scalar backend bit-identical to the historical triple-loop kernel;
// the AVX2 backend differs only by FMA rounding within the chain.

#ifndef RELSERVE_KERNELS_MICRO_KERNEL_H_
#define RELSERVE_KERNELS_MICRO_KERNEL_H_

#include <cstdint>

#include "kernels/cpu_features.h"

namespace relserve {
namespace kernels {
namespace internal {

// Register tile: 6 rows x 16 columns (two 8-float AVX2 vectors wide).
// 12 ymm accumulators + 2 B loads + 1 A broadcast = 15 of 16 ymm regs.
inline constexpr int64_t kMr = 6;
inline constexpr int64_t kNr = 16;

// Cache blocking. kKc * kNr floats (one B micro-panel, 16 KiB) is the
// L1 working set; kMc * kKc floats (one packed A macro-panel, 72 KiB)
// targets L2; kKc * kNc floats (one packed B macro-panel, 1 MiB)
// targets L3. kMc must be a multiple of kMr.
inline constexpr int64_t kKc = 256;
inline constexpr int64_t kMc = 72;
inline constexpr int64_t kNc = 1024;
static_assert(kMc % kMr == 0, "macro tile must hold whole row slivers");

// One ISA's kernel set. Function pointers are resolved once per call
// into the packed driver (the table itself is immutable static data).
struct KernelBackend {
  SimdLevel level;

  // Full kMr x kNr tile accumulating into C (leading dimension ldc).
  void (*gemm_tile)(int64_t kc, const float* a_panel,
                    const float* b_panel, float* c, int64_t ldc,
                    bool accumulate);
  // Edge tile: only rows [0, m_r) and columns [0, n_r) of the tile
  // are written (panels are zero-padded, so reading the full sliver
  // is always safe).
  void (*gemm_tile_edge)(int64_t kc, const float* a_panel,
                         const float* b_panel, float* c, int64_t ldc,
                         bool accumulate, int64_t m_r, int64_t n_r);

  // Elementwise strips (all exact per-element ops; no reassociation
  // except row_sum, which reduces in vector lanes).
  void (*relu)(float* x, int64_t n);                     // x = max(x,0)
  void (*add)(float* a, const float* b, int64_t n);      // a += b
  void (*scale)(float* x, float s, int64_t n);           // x *= s
  float (*row_max)(const float* x, int64_t n);           // max, n >= 1
};

// Always available.
const KernelBackend* GetScalarBackend();

// Returns nullptr when this build (or platform) has no AVX2 backend;
// callers must then use the scalar backend regardless of cpuid.
const KernelBackend* GetAvx2Backend();

// Backend for `level`, degrading to scalar when the requested backend
// is not compiled in.
inline const KernelBackend* GetKernelBackend(SimdLevel level) {
  if (level == SimdLevel::kAvx2) {
    const KernelBackend* avx2 = GetAvx2Backend();
    if (avx2 != nullptr) return avx2;
  }
  return GetScalarBackend();
}

}  // namespace internal
}  // namespace kernels
}  // namespace relserve

#endif  // RELSERVE_KERNELS_MICRO_KERNEL_H_
