// AVX2 int8 block backend (the `maddubs` pipeline).
//
// Like micro_kernel_avx2.cc this is compiled with -mavx2 (per-file in
// src/CMakeLists.txt, x86 only) and only entered behind the cpuid
// probe. The 4-row x 2-channel register tile keeps 8 i32 accumulators
// plus one weight vector and one activation vector live; per 32-byte
// k-step each (row, channel) pair costs one _mm256_maddubs_epi16
// (u8 x s8 -> saturating i16 pairs — saturation impossible because
// activations are on the shifted 7-bit grid, see int8_gemm.h) and one
// _mm256_madd_epi16 against ones (i16 pairs -> i32).
//
// The tile epilogue is where the cycles hide at serving-size k: a
// naive per-accumulator horizontal sum plus scalar dequant costs about
// as much as the 16-step k-loop it follows. So the fast path reduces
// all 8 accumulators with one hadd tree (10 integer ops for 8 totals)
// and dequantizes 4 outputs per SSE vector. Everything stays exact:
// for kp <= 2^16 the full dot and its shift correction fit i32
// (|dot| <= kp * 127 * 127 < 2^30.x), integer lane adds commute, and
// _mm_cvtepi32_ps performs the same IEEE int-to-float conversion the
// scalar backend's cast does — so the result is bit-identical.
// Larger kp (not a serving shape) takes the chunked int64 path.

#include "kernels/int8_gemm.h"

#if defined(__AVX2__)

#include <immintrin.h>

namespace relserve {
namespace kernels {
namespace internal {
namespace {

// Largest contraction (in k elements) whose full dot products and
// shift corrections stay exact in i32 lanes: |dot| <= 2^16 * 16129
// ~= 1.06e9 and |64 * row_sum| <= 2^16 * 8128 ~= 5.3e8, both (and
// their difference) below 2^31.
constexpr int64_t kFastK = 1 << 16;

// Largest per-chunk contraction that keeps the i32 lanes exact on the
// int64 fallback path: each 32-element step adds at most
// 2 * 32258 = 64516 per lane, so 2^19 / 32 = 16384 steps stay below
// 1.1e9 < 2^31.
constexpr int64_t kChunkK = 1 << 19;

inline int64_t HsumEpi32(__m256i v) {
  // Exact: integer lane addition in any order.
  const __m128i lo = _mm256_castsi256_si128(v);
  const __m128i hi = _mm256_extracti128_si256(v, 1);
  __m128i s = _mm_add_epi32(lo, hi);
  s = _mm_add_epi32(s, _mm_srli_si128(s, 8));
  s = _mm_add_epi32(s, _mm_srli_si128(s, 4));
  return static_cast<int64_t>(_mm_cvtsi128_si32(s));
}

// One (row, channel) pair over the full padded contraction — the edge
// path for partial tiles and oversized kp. Still exact integer, so it
// composes freely with the fast path.
int64_t DotOne(const uint8_t* a, const int8_t* w, int64_t kp) {
  const __m256i ones = _mm256_set1_epi16(1);
  int64_t total = 0;
  for (int64_t c0 = 0; c0 < kp; c0 += kChunkK) {
    const int64_t c1 = c0 + kChunkK < kp ? c0 + kChunkK : kp;
    __m256i acc = _mm256_setzero_si256();
    for (int64_t p = c0; p < c1; p += 32) {
      const __m256i va =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + p));
      const __m256i vw =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + p));
      acc = _mm256_add_epi32(
          acc, _mm256_madd_epi16(_mm256_maddubs_epi16(va, vw), ones));
    }
    total += HsumEpi32(acc);
  }
  return total;
}

// The shared dequant expression — must stay textually in sync with
// ScalarGemmBlock in int8_gemm.cc.
inline float Dequant(int64_t dot, int64_t row_sum, float sa, float sw) {
  return static_cast<float>(dot - 64 * row_sum) * (sa * sw);
}

// Reduces four 8-lane i32 accumulators to one __m128i of their four
// totals, in accumulator order. Pure integer adds — exact.
inline __m128i ReduceQuad(__m256i s0, __m256i s1, __m256i s2,
                          __m256i s3) {
  const __m256i v =
      _mm256_hadd_epi32(_mm256_hadd_epi32(s0, s1),
                        _mm256_hadd_epi32(s2, s3));
  return _mm_add_epi32(_mm256_castsi256_si128(v),
                       _mm256_extracti128_si256(v, 1));
}

void Avx2GemmBlock(const uint8_t* a, int64_t lda, int64_t rows,
                   const int8_t* w, int64_t ldw, int64_t chans,
                   int64_t kp, const float* a_scales,
                   const float* w_scales, const int64_t* row_sums,
                   float* out, int64_t ldo) {
  const __m256i ones = _mm256_set1_epi16(1);
  int64_t r0 = 0;
  if (kp <= kFastK) {
    for (; r0 + 4 <= rows; r0 += 4) {
      const uint8_t* a0 = a + r0 * lda;
      const uint8_t* a1 = a0 + lda;
      const uint8_t* a2 = a0 + 2 * lda;
      const uint8_t* a3 = a0 + 3 * lda;
      const float sa0 = a_scales[r0];
      const float sa1 = a_scales[r0 + 1];
      const float sa2 = a_scales[r0 + 2];
      const float sa3 = a_scales[r0 + 3];
      int64_t c0 = 0;
      for (; c0 + 2 <= chans; c0 += 2) {
        const int8_t* w0 = w + c0 * ldw;
        const int8_t* w1 = w0 + ldw;
        __m256i s00 = _mm256_setzero_si256();
        __m256i s01 = _mm256_setzero_si256();
        __m256i s10 = _mm256_setzero_si256();
        __m256i s11 = _mm256_setzero_si256();
        __m256i s20 = _mm256_setzero_si256();
        __m256i s21 = _mm256_setzero_si256();
        __m256i s30 = _mm256_setzero_si256();
        __m256i s31 = _mm256_setzero_si256();
        for (int64_t p = 0; p < kp; p += 32) {
          const __m256i vw0 = _mm256_loadu_si256(
              reinterpret_cast<const __m256i*>(w0 + p));
          const __m256i vw1 = _mm256_loadu_si256(
              reinterpret_cast<const __m256i*>(w1 + p));
          __m256i va;
          va = _mm256_loadu_si256(
              reinterpret_cast<const __m256i*>(a0 + p));
          s00 = _mm256_add_epi32(
              s00,
              _mm256_madd_epi16(_mm256_maddubs_epi16(va, vw0), ones));
          s01 = _mm256_add_epi32(
              s01,
              _mm256_madd_epi16(_mm256_maddubs_epi16(va, vw1), ones));
          va = _mm256_loadu_si256(
              reinterpret_cast<const __m256i*>(a1 + p));
          s10 = _mm256_add_epi32(
              s10,
              _mm256_madd_epi16(_mm256_maddubs_epi16(va, vw0), ones));
          s11 = _mm256_add_epi32(
              s11,
              _mm256_madd_epi16(_mm256_maddubs_epi16(va, vw1), ones));
          va = _mm256_loadu_si256(
              reinterpret_cast<const __m256i*>(a2 + p));
          s20 = _mm256_add_epi32(
              s20,
              _mm256_madd_epi16(_mm256_maddubs_epi16(va, vw0), ones));
          s21 = _mm256_add_epi32(
              s21,
              _mm256_madd_epi16(_mm256_maddubs_epi16(va, vw1), ones));
          va = _mm256_loadu_si256(
              reinterpret_cast<const __m256i*>(a3 + p));
          s30 = _mm256_add_epi32(
              s30,
              _mm256_madd_epi16(_mm256_maddubs_epi16(va, vw0), ones));
          s31 = _mm256_add_epi32(
              s31,
              _mm256_madd_epi16(_mm256_maddubs_epi16(va, vw1), ones));
        }
        // q0 = [dot(r0,c0), dot(r0,c1), dot(r1,c0), dot(r1,c1)] etc.
        const __m128i q0 = ReduceQuad(s00, s01, s10, s11);
        const __m128i q1 = ReduceQuad(s20, s21, s30, s31);
        const int32_t k0 =
            static_cast<int32_t>(64 * row_sums[c0]);
        const int32_t k1 =
            static_cast<int32_t>(64 * row_sums[c0 + 1]);
        const __m128i corr = _mm_setr_epi32(k0, k1, k0, k1);
        const float sw0 = w_scales[c0];
        const float sw1 = w_scales[c0 + 1];
        const __m128 f0 = _mm_mul_ps(
            _mm_cvtepi32_ps(_mm_sub_epi32(q0, corr)),
            _mm_setr_ps(sa0 * sw0, sa0 * sw1, sa1 * sw0, sa1 * sw1));
        const __m128 f1 = _mm_mul_ps(
            _mm_cvtepi32_ps(_mm_sub_epi32(q1, corr)),
            _mm_setr_ps(sa2 * sw0, sa2 * sw1, sa3 * sw0, sa3 * sw1));
        float* o = out + r0 * ldo + c0;
        _mm_storel_pi(reinterpret_cast<__m64*>(o), f0);
        _mm_storeh_pi(reinterpret_cast<__m64*>(o + ldo), f0);
        _mm_storel_pi(reinterpret_cast<__m64*>(o + 2 * ldo), f1);
        _mm_storeh_pi(reinterpret_cast<__m64*>(o + 3 * ldo), f1);
      }
      for (; c0 < chans; ++c0) {
        const int8_t* wc = w + c0 * ldw;
        out[r0 * ldo + c0] =
            Dequant(DotOne(a0, wc, kp), row_sums[c0], sa0,
                    w_scales[c0]);
        out[(r0 + 1) * ldo + c0] =
            Dequant(DotOne(a1, wc, kp), row_sums[c0], sa1,
                    w_scales[c0]);
        out[(r0 + 2) * ldo + c0] =
            Dequant(DotOne(a2, wc, kp), row_sums[c0], sa2,
                    w_scales[c0]);
        out[(r0 + 3) * ldo + c0] =
            Dequant(DotOne(a3, wc, kp), row_sums[c0], sa3,
                    w_scales[c0]);
      }
    }
  }
  for (; r0 < rows; ++r0) {
    const uint8_t* ar = a + r0 * lda;
    for (int64_t c = 0; c < chans; ++c) {
      out[r0 * ldo + c] = Dequant(DotOne(ar, w + c * ldw, kp),
                                  row_sums[c], a_scales[r0],
                                  w_scales[c]);
    }
  }
}

constexpr Int8Backend kAvx2Int8Backend = {
    SimdLevel::kAvx2, "avx2-maddubs", Avx2GemmBlock};

}  // namespace

const Int8Backend* GetAvx2Int8Backend() { return &kAvx2Int8Backend; }

}  // namespace internal
}  // namespace kernels
}  // namespace relserve

#else  // !__AVX2__: non-x86 target or flags not applied

namespace relserve {
namespace kernels {
namespace internal {

const Int8Backend* GetAvx2Int8Backend() { return nullptr; }

}  // namespace internal
}  // namespace kernels
}  // namespace relserve

#endif
