#include "kernels/topk.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <mutex>
#include <vector>

#include "kernels/gemm_packed.h"

namespace relserve {
namespace kernels {

namespace {

// Output channels per macro-block: the per-thread logits scratch for
// a row chunk stays L2-resident (kRowChunk * kChannelBlock floats =
// 64 KiB) and the full output matrix is never materialized.
constexpr int64_t kChannelBlock = 2048;
constexpr int64_t kRowChunk = 8;

struct Candidate {
  float value;
  int64_t index;
};

// Strict total order: better = larger value, ties to the smaller
// index. Unique indices make the order total, so the top-k set is
// scan-order independent.
inline bool Better(const Candidate& a, const Candidate& b) {
  if (a.value != b.value) return a.value > b.value;
  return a.index < b.index;
}

// Bounded selection over one row. A flat array ordered worst-first is
// cheaper than a real heap at serving-size k (k <= ~100): replacement
// scans k entries only when a candidate beats the current worst.
class TopKSelector {
 public:
  explicit TopKSelector(int64_t k) : k_(k) { best_.reserve(k); }

  void Reset() { best_.clear(); }

  void Offer(float value, int64_t index) {
    const Candidate c{value, index};
    if (static_cast<int64_t>(best_.size()) < k_) {
      best_.push_back(c);
      if (static_cast<int64_t>(best_.size()) == k_) {
        worst_ = FindWorst();
      }
      return;
    }
    if (!Better(c, best_[worst_])) return;
    best_[worst_] = c;
    worst_ = FindWorst();
  }

  // Admission threshold for an ascending-index scan: while the
  // selector is filling, everything must be offered (-inf); once
  // full, a candidate arriving later in the scan always carries a
  // larger index than the incumbent worst, so a value tie is never
  // admitted — the strict `value > Threshold()` single compare is the
  // exact admission test for the hot loop.
  float Threshold() const {
    if (static_cast<int64_t>(best_.size()) < k_) {
      return -std::numeric_limits<float>::infinity();
    }
    return best_[worst_].value;
  }

  // Survivors sorted by the total order (value desc, index asc).
  std::vector<Candidate> Sorted() {
    std::vector<Candidate> out = best_;
    std::sort(out.begin(), out.end(), Better);
    return out;
  }

 private:
  size_t FindWorst() const {
    size_t worst = 0;
    for (size_t i = 1; i < best_.size(); ++i) {
      if (Better(best_[worst], best_[i])) worst = i;
    }
    return worst;
  }

  int64_t k_;
  size_t worst_ = 0;
  std::vector<Candidate> best_;
};

}  // namespace

Status MatMulTopKInto(const Tensor& a, const Tensor* dense_w,
                      const Int8Weight* int8_w,
                      const CsrWeight* sparse_w,
                      const TopKOptions& opts, Tensor* out,
                      ThreadPool* pool) {
  const int arms = (dense_w != nullptr) + (int8_w != nullptr) +
                   (sparse_w != nullptr);
  if (arms != 1) {
    return Status::InvalidArgument(
        "top-k matmul needs exactly one weight arm");
  }
  if (a.shape().ndim() != 2) {
    return Status::InvalidArgument("top-k matmul expects a matrix");
  }
  const int64_t m = a.shape().dim(0);
  const int64_t k = a.shape().dim(1);
  int64_t channels;
  if (dense_w != nullptr) {
    if (dense_w->shape().ndim() != 2 || dense_w->shape().dim(1) != k) {
      return Status::InvalidArgument("top-k dense weight mismatch");
    }
    channels = dense_w->shape().dim(0);
  } else if (int8_w != nullptr) {
    if (int8_w->in != k) {
      return Status::InvalidArgument("top-k int8 weight mismatch");
    }
    channels = int8_w->out;
  } else {
    if (sparse_w->in != k) {
      return Status::InvalidArgument("top-k sparse weight mismatch");
    }
    channels = sparse_w->out;
  }
  const int64_t kk = opts.k;
  if (kk <= 0 || kk > channels) {
    return Status::InvalidArgument("top-k k out of range");
  }
  if (out->shape().ndim() != 2 || out->shape().dim(0) != m ||
      out->shape().dim(1) != 2 * kk) {
    return Status::InvalidArgument("top-k output must be [m, 2k]");
  }
  if (opts.bias != nullptr &&
      opts.bias->NumElements() != channels) {
    return Status::InvalidArgument("top-k bias width mismatch");
  }
  if (m == 0) return Status::OK();

  const float* src = a.data();
  const float* bias = opts.bias != nullptr ? opts.bias->data() : nullptr;
  float* dst = out->data();
  Status first_error = Status::OK();
  std::mutex error_mu;

  auto run_rows = [&](int64_t r_lo, int64_t r_hi) {
    // Per-worker state: one block of logits and one selector per row
    // of the chunk. This is the entire activation footprint of the
    // stage — O(kRowChunk * kChannelBlock), not O(m * channels).
    std::vector<float> block(
        static_cast<size_t>(kRowChunk * kChannelBlock));
    std::vector<uint8_t> qa;
    std::vector<float> qscales;
    if (int8_w != nullptr) {
      qa.resize(static_cast<size_t>(kRowChunk * int8_w->padded_in));
      qscales.resize(static_cast<size_t>(kRowChunk));
    }
    std::vector<TopKSelector> selectors;
    selectors.reserve(static_cast<size_t>(kRowChunk));
    for (int64_t i = 0; i < kRowChunk; ++i) selectors.emplace_back(kk);

    for (int64_t r0 = r_lo; r0 < r_hi; r0 += kRowChunk) {
      const int64_t rows = std::min<int64_t>(kRowChunk, r_hi - r0);
      for (int64_t r = 0; r < rows; ++r) {
        selectors[static_cast<size_t>(r)].Reset();
      }
      if (int8_w != nullptr) {
        for (int64_t r = 0; r < rows; ++r) {
          qscales[static_cast<size_t>(r)] = QuantizeRowU7(
              src + (r0 + r) * k, k, int8_w->padded_in,
              qa.data() + r * int8_w->padded_in);
        }
      }
      for (int64_t c0 = 0; c0 < channels; c0 += kChannelBlock) {
        const int64_t bw = std::min(kChannelBlock, channels - c0);
        // --- produce block logits [rows, bw] ----------------------
        if (dense_w != nullptr) {
          const Status s = internal::GemmPacked(
              rows, bw, k, src + r0 * k, /*lda=*/k, /*trans_a=*/false,
              dense_w->data() + c0 * k, /*ldb=*/k, /*trans_b=*/true,
              block.data(), /*ldc=*/kChannelBlock,
              /*accumulate=*/false, /*pool=*/nullptr);
          if (!s.ok()) {
            std::lock_guard<std::mutex> lock(error_mu);
            if (first_error.ok()) first_error = s;
            return;
          }
        } else if (int8_w != nullptr) {
          const internal::Int8Backend* backend =
              internal::GetInt8Backend(ActiveSimdLevel());
          const int64_t kp = int8_w->padded_in;
          backend->gemm_block(qa.data(), kp, rows,
                              int8_w->data.data() + c0 * kp, kp, bw,
                              kp, qscales.data(),
                              int8_w->scales.data() + c0,
                              int8_w->row_sums.data() + c0,
                              block.data(), kChannelBlock);
        } else {
          internal::CsrBlockDot(src + r0 * k, k, rows, *sparse_w, c0,
                                bw, block.data(), kChannelBlock);
        }
        // --- fused epilogue + selection ---------------------------
        for (int64_t r = 0; r < rows; ++r) {
          float* y = block.data() + r * kChannelBlock;
          TopKSelector& sel = selectors[static_cast<size_t>(r)];
          float threshold = sel.Threshold();
          for (int64_t c = 0; c < bw; ++c) {
            float v = y[c];
            if (bias != nullptr) v += bias[c0 + c];
            if (opts.relu && v < 0.0f) v = 0.0f;
            if (v > threshold) {
              sel.Offer(v, c0 + c);
              threshold = sel.Threshold();
            }
          }
        }
      }
      // --- write [v0..v_{k-1}, i0..i_{k-1}] rows ------------------
      for (int64_t r = 0; r < rows; ++r) {
        std::vector<Candidate> best =
            selectors[static_cast<size_t>(r)].Sorted();
        float* y = dst + (r0 + r) * 2 * kk;
        if (opts.softmax) {
          // Numerically-stable softmax over the survivors: the
          // serving scores renormalize over the returned candidates.
          const float mx = best[0].value;  // sorted desc
          float sum = 0.0f;
          for (int64_t i = 0; i < kk; ++i) {
            y[i] = std::exp(best[static_cast<size_t>(i)].value - mx);
            sum += y[i];
          }
          for (int64_t i = 0; i < kk; ++i) y[i] /= sum;
        } else {
          for (int64_t i = 0; i < kk; ++i) {
            y[i] = best[static_cast<size_t>(i)].value;
          }
        }
        for (int64_t i = 0; i < kk; ++i) {
          y[kk + i] =
              static_cast<float>(best[static_cast<size_t>(i)].index);
        }
      }
    }
  };

  if (pool != nullptr && m >= 2 * kRowChunk) {
    pool->ParallelFor(0, m, run_rows, /*grain=*/0,
                      /*work_hint=*/2 * m * channels * k);
  } else {
    run_rows(0, m);
  }
  return first_error;
}

}  // namespace kernels
}  // namespace relserve
