// AVX2+FMA micro-kernel backend.
//
// This is the only translation unit compiled with -mavx2 -mfma (set
// per-file in src/CMakeLists.txt, x86 builds only); nothing here runs
// unless the cpuid probe in cpu_features.cc reported AVX2+FMA+OSXSAVE,
// so the rest of the binary stays executable on baseline hardware.
//
// The 6x16 register tile uses 12 ymm accumulators, two B-vector loads
// and one A broadcast per k step — 15 of the 16 ymm registers — and
// issues two FMAs per accumulator row per step. Per output element the
// accumulation is still one ascending-k chain; results differ from the
// scalar backend only by FMA rounding (the multiply-add is fused).

#include "kernels/micro_kernel.h"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include "common/aligned_alloc.h"

namespace relserve {
namespace kernels {
namespace internal {
namespace {

void Avx2Tile(int64_t kc, const float* a_panel, const float* b_panel,
              float* c, int64_t ldc, bool accumulate) {
  __m256 acc0a, acc0b, acc1a, acc1b, acc2a, acc2b;
  __m256 acc3a, acc3b, acc4a, acc4b, acc5a, acc5b;
  if (accumulate) {
    acc0a = _mm256_loadu_ps(c + 0 * ldc);
    acc0b = _mm256_loadu_ps(c + 0 * ldc + 8);
    acc1a = _mm256_loadu_ps(c + 1 * ldc);
    acc1b = _mm256_loadu_ps(c + 1 * ldc + 8);
    acc2a = _mm256_loadu_ps(c + 2 * ldc);
    acc2b = _mm256_loadu_ps(c + 2 * ldc + 8);
    acc3a = _mm256_loadu_ps(c + 3 * ldc);
    acc3b = _mm256_loadu_ps(c + 3 * ldc + 8);
    acc4a = _mm256_loadu_ps(c + 4 * ldc);
    acc4b = _mm256_loadu_ps(c + 4 * ldc + 8);
    acc5a = _mm256_loadu_ps(c + 5 * ldc);
    acc5b = _mm256_loadu_ps(c + 5 * ldc + 8);
  } else {
    acc0a = acc0b = acc1a = acc1b = acc2a = acc2b = _mm256_setzero_ps();
    acc3a = acc3b = acc4a = acc4b = acc5a = acc5b = _mm256_setzero_ps();
  }
  for (int64_t p = 0; p < kc; ++p) {
    const float* a = a_panel + p * kMr;
    // Packed panels start on a 64-byte boundary and every B sliver is
    // kNr floats, so these 32-byte loads are always aligned.
    const __m256 b0 = _mm256_load_ps(b_panel + p * kNr);
    const __m256 b1 = _mm256_load_ps(b_panel + p * kNr + 8);
    __m256 ai;
    ai = _mm256_broadcast_ss(a + 0);
    acc0a = _mm256_fmadd_ps(ai, b0, acc0a);
    acc0b = _mm256_fmadd_ps(ai, b1, acc0b);
    ai = _mm256_broadcast_ss(a + 1);
    acc1a = _mm256_fmadd_ps(ai, b0, acc1a);
    acc1b = _mm256_fmadd_ps(ai, b1, acc1b);
    ai = _mm256_broadcast_ss(a + 2);
    acc2a = _mm256_fmadd_ps(ai, b0, acc2a);
    acc2b = _mm256_fmadd_ps(ai, b1, acc2b);
    ai = _mm256_broadcast_ss(a + 3);
    acc3a = _mm256_fmadd_ps(ai, b0, acc3a);
    acc3b = _mm256_fmadd_ps(ai, b1, acc3b);
    ai = _mm256_broadcast_ss(a + 4);
    acc4a = _mm256_fmadd_ps(ai, b0, acc4a);
    acc4b = _mm256_fmadd_ps(ai, b1, acc4b);
    ai = _mm256_broadcast_ss(a + 5);
    acc5a = _mm256_fmadd_ps(ai, b0, acc5a);
    acc5b = _mm256_fmadd_ps(ai, b1, acc5b);
  }
  _mm256_storeu_ps(c + 0 * ldc, acc0a);
  _mm256_storeu_ps(c + 0 * ldc + 8, acc0b);
  _mm256_storeu_ps(c + 1 * ldc, acc1a);
  _mm256_storeu_ps(c + 1 * ldc + 8, acc1b);
  _mm256_storeu_ps(c + 2 * ldc, acc2a);
  _mm256_storeu_ps(c + 2 * ldc + 8, acc2b);
  _mm256_storeu_ps(c + 3 * ldc, acc3a);
  _mm256_storeu_ps(c + 3 * ldc + 8, acc3b);
  _mm256_storeu_ps(c + 4 * ldc, acc4a);
  _mm256_storeu_ps(c + 4 * ldc + 8, acc4b);
  _mm256_storeu_ps(c + 5 * ldc, acc5a);
  _mm256_storeu_ps(c + 5 * ldc + 8, acc5b);
}

// Edge tiles run the full-width kernel into an aligned scratch tile
// (the panels are zero-padded to kMr x kNr, so the extra lanes compute
// harmless zeros) and then merge the valid region into C.
void Avx2TileEdge(int64_t kc, const float* a_panel, const float* b_panel,
                  float* c, int64_t ldc, bool accumulate, int64_t m_r,
                  int64_t n_r) {
  alignas(kCacheLineBytes) float tile[kMr * kNr];
  Avx2Tile(kc, a_panel, b_panel, tile, kNr, /*accumulate=*/false);
  for (int64_t i = 0; i < m_r; ++i) {
    float* c_row = c + i * ldc;
    const float* t_row = tile + i * kNr;
    if (accumulate) {
      for (int64_t j = 0; j < n_r; ++j) c_row[j] += t_row[j];
    } else {
      for (int64_t j = 0; j < n_r; ++j) c_row[j] = t_row[j];
    }
  }
}

void Avx2Relu(float* x, int64_t n) {
  const __m256 zero = _mm256_setzero_ps();
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(x + i, _mm256_max_ps(_mm256_loadu_ps(x + i), zero));
  }
  for (; i < n; ++i) x[i] = x[i] > 0.0f ? x[i] : 0.0f;
}

void Avx2Add(float* a, const float* b, int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        a + i, _mm256_add_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
  }
  for (; i < n; ++i) a[i] += b[i];
}

void Avx2Scale(float* x, float s, int64_t n) {
  const __m256 sv = _mm256_set1_ps(s);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(x + i, _mm256_mul_ps(_mm256_loadu_ps(x + i), sv));
  }
  for (; i < n; ++i) x[i] *= s;
}

float Avx2RowMax(const float* x, int64_t n) {
  float m = x[0];
  int64_t i = 0;
  if (n >= 8) {
    __m256 mv = _mm256_loadu_ps(x);
    for (i = 8; i + 8 <= n; i += 8) {
      mv = _mm256_max_ps(mv, _mm256_loadu_ps(x + i));
    }
    alignas(32) float lanes[8];
    _mm256_store_ps(lanes, mv);
    m = lanes[0];
    for (int lane = 1; lane < 8; ++lane) {
      m = m > lanes[lane] ? m : lanes[lane];
    }
  }
  for (; i < n; ++i) m = m > x[i] ? m : x[i];
  return m;
}

constexpr KernelBackend kAvx2Backend = {
    SimdLevel::kAvx2, Avx2Tile,  Avx2TileEdge, Avx2Relu,
    Avx2Add,          Avx2Scale, Avx2RowMax,
};

}  // namespace

const KernelBackend* GetAvx2Backend() { return &kAvx2Backend; }

}  // namespace internal
}  // namespace kernels
}  // namespace relserve

#else  // !(__AVX2__ && __FMA__): non-x86 target or flags not applied

namespace relserve {
namespace kernels {
namespace internal {

const KernelBackend* GetAvx2Backend() { return nullptr; }

}  // namespace internal
}  // namespace kernels
}  // namespace relserve

#endif
