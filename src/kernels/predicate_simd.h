// Branch-free SIMD predicate evaluation over columnar chunks.
//
// The vectorized expression evaluator (relational/vectorized.cc)
// reduces every comparison to a strip over two dense operand arrays
// aligned with the current selection vector:
//
//   out[m] = sel[i]; m += compare(a[i], b[i]);
//
// These kernels implement exactly that strip: an AVX2 backend compares
// 4 doubles (or 4 int64s) per step with _mm256_cmp_pd / cmpeq_epi64,
// extracts the lane mask, and appends the surviving sel entries with
// the same branch-free increment the scalar loop uses. Comparison
// semantics match the scalar operators exactly — ordered non-signaling
// predicates for < / <= / == (NaN compares false, like the C++
// operators) and an unordered != for truthiness (NaN != 0.0 is true) —
// so the selection output is BIT-IDENTICAL to the scalar backend's on
// every input, including NaNs, negative zeros and denormals.

#ifndef RELSERVE_KERNELS_PREDICATE_SIMD_H_
#define RELSERVE_KERNELS_PREDICATE_SIMD_H_

#include <cstdint>

#include "kernels/cpu_features.h"

namespace relserve {
namespace kernels {

// One ISA's predicate strips. Each kernel scans `n` dense operand
// entries, writes the sel values of passing rows to `out` (caller
// provides capacity n), and returns the pass count.
struct PredicateKernels {
  SimdLevel level;
  int64_t (*lt_f64)(const double* a, const double* b,
                    const int32_t* sel, int64_t n, int32_t* out);
  int64_t (*le_f64)(const double* a, const double* b,
                    const int32_t* sel, int64_t n, int32_t* out);
  int64_t (*eq_f64)(const double* a, const double* b,
                    const int32_t* sel, int64_t n, int32_t* out);
  // |a - b| <= eps (the approximate-match predicate).
  int64_t (*absdiff_le_f64)(const double* a, const double* b, double eps,
                            const int32_t* sel, int64_t n, int32_t* out);
  int64_t (*eq_i64)(const int64_t* a, const int64_t* b,
                    const int32_t* sel, int64_t n, int32_t* out);
  // v != 0.0 (numeric truthiness; NaN is truthy).
  int64_t (*nonzero_f64)(const double* v, const int32_t* sel, int64_t n,
                         int32_t* out);
};

const PredicateKernels* GetScalarPredicateKernels();
// nullptr when this build/platform has no AVX2 backend.
const PredicateKernels* GetAvx2PredicateKernels();

inline const PredicateKernels* GetPredicateKernels(SimdLevel level) {
  if (level == SimdLevel::kAvx2) {
    const PredicateKernels* avx2 = GetAvx2PredicateKernels();
    if (avx2 != nullptr) return avx2;
  }
  return GetScalarPredicateKernels();
}

}  // namespace kernels
}  // namespace relserve

#endif  // RELSERVE_KERNELS_PREDICATE_SIMD_H_
