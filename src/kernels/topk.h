// Fused matmul + top-k epilogue for extreme-classification heads.
//
// The 14k-wide logits layer of the Amazon-14k model dominates both
// FLOPs and memory traffic, yet a serving query only wants the k best
// classes per row. This driver streams the output channels in fixed
// macro-blocks through a per-thread block scratch (one block of
// logits, never the full [batch, classes] matrix) and keeps a bounded
// min-heap of the k best (value, index) pairs per row — composing
// with the bias/relu fusion hooks by applying them to each block
// before selection.
//
// Determinism contract: candidates are ranked by the strict total
// order (value desc, index asc). Because indices are unique the top-k
// SET under this order is unique whatever the scan or thread order,
// and the output is sorted by the same order — so ties and duplicated
// logits produce identical results at any thread count and with any
// of the three weight arms.
//
// Output layout: [m, 2k] rows of k values followed by k indices
// (stored as floats; class counts < 2^24 are exact).

#ifndef RELSERVE_KERNELS_TOPK_H_
#define RELSERVE_KERNELS_TOPK_H_

#include <cstdint>

#include "common/result.h"
#include "kernels/int8_gemm.h"
#include "kernels/sparse_gemm.h"
#include "resource/thread_pool.h"
#include "tensor/tensor.h"

namespace relserve {
namespace kernels {

struct TopKOptions {
  int64_t k = 1;
  // Fused epilogue, applied per block before selection (bias, relu)
  // or to the k survivors after selection (softmax renormalizes the
  // returned candidates — the serving contract for a top-k head).
  const Tensor* bias = nullptr;  // rank-1 [channels]
  bool relu = false;
  bool softmax = false;
};

// logits = a * w^T (+bias, relu); out = top-k per row, [m, 2k].
// Exactly one of `dense_w` ([n, k] fp32), `int8_w`, `sparse_w` must be
// non-null. `out` must be preallocated [m, 2 * opts.k]; `pool` may be
// null.
Status MatMulTopKInto(const Tensor& a, const Tensor* dense_w,
                      const Int8Weight* int8_w, const CsrWeight* sparse_w,
                      const TopKOptions& opts, Tensor* out,
                      ThreadPool* pool = nullptr);

}  // namespace kernels
}  // namespace relserve

#endif  // RELSERVE_KERNELS_TOPK_H_
