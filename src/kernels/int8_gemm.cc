// Int8 GEMM driver + always-correct scalar backend.
//
// The driver owns everything a backend must not influence: dynamic
// row quantization, tiling, parallel partitioning, and the final
// dequantization (one shared float expression), so switching backends
// can only change how the exact integer accumulators are computed —
// never their values.

#include "kernels/int8_gemm.h"

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace relserve {
namespace kernels {

const char* QuantizeModeName(QuantizeMode mode) {
  switch (mode) {
    case QuantizeMode::kAuto:
      return "auto";
    case QuantizeMode::kInt8:
      return "int8";
    case QuantizeMode::kOff:
      return "off";
  }
  return "?";
}

namespace {

QuantizeMode ResolveInitialQuantizeMode() {
  const char* env = std::getenv("RELSERVE_QUANTIZE");
  if (env != nullptr && std::strcmp(env, "int8") == 0) {
    return QuantizeMode::kInt8;
  }
  if (env != nullptr && (std::strcmp(env, "off") == 0 ||
                         std::strcmp(env, "fp32") == 0)) {
    return QuantizeMode::kOff;
  }
  return QuantizeMode::kAuto;
}

std::atomic<QuantizeMode>& QuantizeModeStorage() {
  static std::atomic<QuantizeMode> mode{ResolveInitialQuantizeMode()};
  return mode;
}

inline int64_t RoundUp32(int64_t v) { return (v + 31) / 32 * 32; }

inline int8_t ClampQ(long v, long lo, long hi) {
  return static_cast<int8_t>(v < lo ? lo : (v > hi ? hi : v));
}

}  // namespace

QuantizeMode ActiveQuantizeMode() {
  return QuantizeModeStorage().load(std::memory_order_relaxed);
}

QuantizeMode SetActiveQuantizeMode(QuantizeMode mode) {
  QuantizeModeStorage().store(mode, std::memory_order_relaxed);
  return mode;
}

Result<Int8Weight> QuantizeWeightPerChannel(const Tensor& w) {
  if (w.shape().ndim() != 2) {
    return Status::InvalidArgument("int8 weight must be a matrix");
  }
  Int8Weight q;
  q.out = w.shape().dim(0);
  q.in = w.shape().dim(1);
  q.padded_in = RoundUp32(q.in);
  q.data.assign(static_cast<size_t>(q.out * q.padded_in), 0);
  q.scales.resize(static_cast<size_t>(q.out));
  q.row_sums.resize(static_cast<size_t>(q.out));
  const float* src = w.data();
  for (int64_t o = 0; o < q.out; ++o) {
    const float* row = src + o * q.in;
    float maxabs = 0.0f;
    for (int64_t p = 0; p < q.in; ++p) {
      const float a = std::fabs(row[p]);
      if (a > maxabs) maxabs = a;
    }
    const float scale = maxabs > 0.0f ? maxabs / 127.0f : 1.0f;
    int8_t* dst = q.data.data() + o * q.padded_in;
    int64_t sum = 0;
    for (int64_t p = 0; p < q.in; ++p) {
      const int8_t v = ClampQ(std::lroundf(row[p] / scale), -127, 127);
      dst[p] = v;
      sum += v;
    }
    q.scales[static_cast<size_t>(o)] = scale;
    q.row_sums[static_cast<size_t>(o)] = sum;
  }
  return q;
}

float QuantizeRowU7(const float* x, int64_t k, int64_t padded,
                    uint8_t* q) {
  // Dynamic quantization runs on every serving row, so this is part
  // of the int8 arm's critical path — it is vectorized with baseline
  // SSE2 (guaranteed on x86-64, no dispatch needed). The clamp
  // happens in float before the convert (equivalent: the grid points
  // are exactly representable) and the convert rounds to nearest,
  // ties to even — the scalar tail uses the same cvtss2si semantics
  // so a row quantizes identically regardless of its length mod 4.
  float maxabs = 0.0f;
  int64_t p = 0;
#if defined(__SSE2__)
  const __m128 absmask =
      _mm_castsi128_ps(_mm_set1_epi32(0x7fffffff));
  __m128 vmax = _mm_setzero_ps();
  for (; p + 4 <= k; p += 4) {
    vmax = _mm_max_ps(vmax, _mm_and_ps(absmask, _mm_loadu_ps(x + p)));
  }
  vmax = _mm_max_ps(vmax, _mm_movehl_ps(vmax, vmax));
  vmax = _mm_max_ss(vmax, _mm_shuffle_ps(vmax, vmax, 1));
  maxabs = _mm_cvtss_f32(vmax);
#endif
  for (; p < k; ++p) {
    const float a = std::fabs(x[p]);
    if (a > maxabs) maxabs = a;
  }
  const float scale = maxabs > 0.0f ? maxabs / 63.0f : 1.0f;
  p = 0;
#if defined(__SSE2__)
  const __m128 vscale = _mm_set1_ps(scale);
  const __m128 vlo = _mm_set1_ps(-63.0f);
  const __m128 vhi = _mm_set1_ps(63.0f);
  const __m128i vshift = _mm_set1_epi32(64);
  for (; p + 8 <= k; p += 8) {
    const __m128 d0 = _mm_max_ps(
        vlo, _mm_min_ps(vhi, _mm_div_ps(_mm_loadu_ps(x + p), vscale)));
    const __m128 d1 = _mm_max_ps(
        vlo,
        _mm_min_ps(vhi, _mm_div_ps(_mm_loadu_ps(x + p + 4), vscale)));
    const __m128i q0 = _mm_add_epi32(_mm_cvtps_epi32(d0), vshift);
    const __m128i q1 = _mm_add_epi32(_mm_cvtps_epi32(d1), vshift);
    // [1, 127] survives both saturating packs unchanged.
    _mm_storel_epi64(
        reinterpret_cast<__m128i*>(q + p),
        _mm_packus_epi16(_mm_packs_epi32(q0, q1), _mm_setzero_si128()));
  }
  for (; p < k; ++p) {
    float d = x[p] / scale;
    d = d < -63.0f ? -63.0f : (d > 63.0f ? 63.0f : d);
    q[p] = static_cast<uint8_t>(_mm_cvtss_si32(_mm_set_ss(d)) + 64);
  }
#else
  for (; p < k; ++p) {
    float d = x[p] / scale;
    d = d < -63.0f ? -63.0f : (d > 63.0f ? 63.0f : d);
    q[p] = static_cast<uint8_t>(
        static_cast<int>(std::nearbyintf(d)) + 64);
  }
#endif
  for (; p < padded; ++p) q[p] = 64;  // shifted zero
  return scale;
}

namespace internal {
namespace {

// Portable reference block: plain int64 accumulation over int
// products, then the shared dequant expression. Integer adds are
// associative and the dequant is one conversion plus two multiplies,
// so this defines THE answer every other backend must reproduce
// exactly.
void ScalarGemmBlock(const uint8_t* a, int64_t lda, int64_t rows,
                     const int8_t* w, int64_t ldw, int64_t chans,
                     int64_t kp, const float* a_scales,
                     const float* w_scales, const int64_t* row_sums,
                     float* out, int64_t ldo) {
  for (int64_t r = 0; r < rows; ++r) {
    const uint8_t* ar = a + r * lda;
    for (int64_t c = 0; c < chans; ++c) {
      const int8_t* wc = w + c * ldw;
      int64_t sum = 0;
      for (int64_t p = 0; p < kp; ++p) {
        sum += static_cast<int64_t>(ar[p]) * wc[p];
      }
      const int64_t true_acc = sum - 64 * row_sums[c];
      out[r * ldo + c] = static_cast<float>(true_acc) *
                         (a_scales[r] * w_scales[c]);
    }
  }
}

constexpr Int8Backend kScalarInt8Backend = {SimdLevel::kScalar,
                                            "scalar", ScalarGemmBlock};

}  // namespace

const Int8Backend* GetScalarInt8Backend() {
  return &kScalarInt8Backend;
}

}  // namespace internal

Status Int8GemmTransBInto(const Tensor& a, const Int8Weight& w,
                          Tensor* out, ThreadPool* pool) {
  if (a.shape().ndim() != 2 || out->shape().ndim() != 2) {
    return Status::InvalidArgument("int8 gemm expects matrices");
  }
  const int64_t m = a.shape().dim(0);
  const int64_t k = a.shape().dim(1);
  if (k != w.in || out->shape().dim(0) != m ||
      out->shape().dim(1) != w.out) {
    return Status::InvalidArgument("int8 gemm shape mismatch");
  }
  if (m == 0 || w.out == 0) return Status::OK();
  const internal::Int8Backend* backend =
      internal::GetInt8Backend(ActiveSimdLevel());
  const int64_t kp = w.padded_in;
  const float* src = a.data();
  float* dst = out->data();

  // Row morsels: each worker quantizes and finishes its own rows, so
  // every (row, channel) accumulator is produced by exactly one
  // ascending-p integer chain — identical at any thread count.
  auto run_rows = [&](int64_t r_lo, int64_t r_hi) {
    constexpr int64_t kRowTile = 4;
    std::vector<uint8_t> qa(static_cast<size_t>(kRowTile * kp));
    float scales[kRowTile];
    for (int64_t r0 = r_lo; r0 < r_hi; r0 += kRowTile) {
      const int64_t rows = std::min<int64_t>(kRowTile, r_hi - r0);
      for (int64_t r = 0; r < rows; ++r) {
        scales[r] = QuantizeRowU7(src + (r0 + r) * k, k, kp,
                                  qa.data() + r * kp);
      }
      backend->gemm_block(qa.data(), kp, rows, w.data.data(), kp,
                          w.out, kp, scales, w.scales.data(),
                          w.row_sums.data(), dst + r0 * w.out, w.out);
    }
  };
  if (pool != nullptr && m >= 8) {
    // work_hint = integer MACs; the pool's cost-based grain keeps
    // small batches inline.
    pool->ParallelFor(0, m, run_rows, /*grain=*/0,
                      /*work_hint=*/2 * m * w.out * kp);
  } else {
    run_rows(0, m);
  }
  return Status::OK();
}

}  // namespace kernels
}  // namespace relserve
