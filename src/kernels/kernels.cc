#include "kernels/kernels.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "kernels/cpu_features.h"
#include "kernels/gemm_packed.h"
#include "kernels/micro_kernel.h"

namespace relserve {
namespace kernels {

namespace {

// The ISA backend for the elementwise strips, re-resolved per call so
// bench/test overrides of the active level take effect immediately
// (the per-level tables themselves are immutable statics).
const internal::KernelBackend* Backend() {
  return internal::GetKernelBackend(ActiveSimdLevel());
}

}  // namespace

Status GemmInto(const Tensor& a, const Tensor& b, bool transpose_b,
                bool accumulate, Tensor* out, ThreadPool* pool) {
  if (a.shape().ndim() != 2 || b.shape().ndim() != 2 ||
      out->shape().ndim() != 2) {
    return Status::InvalidArgument("GemmInto expects matrices");
  }
  const int64_t m = a.shape().dim(0);
  const int64_t k = a.shape().dim(1);
  const int64_t b_k = transpose_b ? b.shape().dim(1) : b.shape().dim(0);
  const int64_t n = transpose_b ? b.shape().dim(0) : b.shape().dim(1);
  if (b_k != k) {
    return Status::InvalidArgument(
        "GemmInto inner dimension mismatch: a " + a.shape().ToString() +
        ", b " + b.shape().ToString() +
        (transpose_b ? " (transposed)" : ""));
  }
  if (out->shape().dim(0) != m || out->shape().dim(1) != n) {
    return Status::InvalidArgument("GemmInto output shape " +
                                   out->shape().ToString() + " wants [" +
                                   std::to_string(m) + ", " +
                                   std::to_string(n) + "]");
  }
  // b's leading dimension in storage: [k, n] row-major or [n, k] when
  // the caller hands the transposed (weight) layout.
  const int64_t ldb = transpose_b ? k : n;
  return internal::GemmPacked(m, n, k, a.data(), k, /*trans_a=*/false,
                              b.data(), ldb, transpose_b, out->data(), n,
                              accumulate, pool);
}

Result<Tensor> MatMul(const Tensor& a, const Tensor& b, bool transpose_b,
                      MemoryTracker* tracker, ThreadPool* pool) {
  if (a.shape().ndim() != 2 || b.shape().ndim() != 2) {
    return Status::InvalidArgument("MatMul expects matrices");
  }
  const int64_t m = a.shape().dim(0);
  const int64_t n = transpose_b ? b.shape().dim(0) : b.shape().dim(1);
  RELSERVE_ASSIGN_OR_RETURN(Tensor out,
                            Tensor::Create(Shape{m, n}, tracker));
  RELSERVE_RETURN_NOT_OK(
      GemmInto(a, b, transpose_b, /*accumulate=*/false, &out, pool));
  return out;
}

Status GemmTransAInto(const Tensor& a, const Tensor& b, bool accumulate,
                      Tensor* out, ThreadPool* pool) {
  if (a.shape().ndim() != 2 || b.shape().ndim() != 2 ||
      out->shape().ndim() != 2) {
    return Status::InvalidArgument("GemmTransAInto expects matrices");
  }
  const int64_t n = a.shape().dim(0);
  const int64_t m = a.shape().dim(1);
  const int64_t k = b.shape().dim(1);
  if (b.shape().dim(0) != n || out->shape().dim(0) != m ||
      out->shape().dim(1) != k) {
    return Status::InvalidArgument("GemmTransAInto shape mismatch");
  }
  // out[m, k] = a^T * b with a stored [n, m]: trans_a packing reads
  // logical A[i, s] from a[s * m + i].
  return internal::GemmPacked(m, k, n, a.data(), m, /*trans_a=*/true,
                              b.data(), k, /*trans_b=*/false,
                              out->data(), k, accumulate, pool);
}

Status ColumnSumInto(const Tensor& x, Tensor* out) {
  if (x.shape().ndim() != 2 || out->shape().ndim() != 1 ||
      out->shape().dim(0) != x.shape().dim(1)) {
    return Status::InvalidArgument("ColumnSumInto shape mismatch");
  }
  const int64_t rows = x.shape().dim(0);
  const int64_t cols = x.shape().dim(1);
  std::memset(out->data(), 0, out->ByteSize());
  float* dst = out->data();
  const float* src = x.data();
  const internal::KernelBackend* be = Backend();
  for (int64_t r = 0; r < rows; ++r) {
    be->add(dst, src + r * cols, cols);
  }
  return Status::OK();
}

void ReluInPlace(Tensor* x) {
  Backend()->relu(x->data(), x->NumElements());
}

Status BiasAddInPlace(Tensor* x, const Tensor& bias) {
  if (bias.shape().ndim() != 1) {
    return Status::InvalidArgument("bias must be rank-1");
  }
  const int ndim = x->shape().ndim();
  if (ndim < 1) return Status::InvalidArgument("x must have rank >= 1");
  const int64_t width = x->shape().dim(ndim - 1);
  if (bias.shape().dim(0) != width) {
    return Status::InvalidArgument(
        "bias length " + std::to_string(bias.shape().dim(0)) +
        " vs last dim " + std::to_string(width));
  }
  float* data = x->data();
  const float* b = bias.data();
  const int64_t rows = x->NumElements() / width;
  const internal::KernelBackend* be = Backend();
  for (int64_t r = 0; r < rows; ++r) {
    be->add(data + r * width, b, width);
  }
  return Status::OK();
}

Status SoftmaxRowsInPlace(Tensor* x) {
  if (x->shape().ndim() != 2) {
    return Status::InvalidArgument("softmax expects a matrix");
  }
  const int64_t rows = x->shape().dim(0);
  const int64_t cols = x->shape().dim(1);
  float* data = x->data();
  const internal::KernelBackend* be = Backend();
  // Max and the final scale are vectorized; exp stays scalar (exact
  // libm, identical across backends) with the sum fused into its loop.
  for (int64_t r = 0; r < rows; ++r) {
    float* row = data + r * cols;
    const float max_v = be->row_max(row, cols);
    float sum = 0.0f;
    for (int64_t c = 0; c < cols; ++c) {
      row[c] = std::exp(row[c] - max_v);
      sum += row[c];
    }
    be->scale(row, 1.0f / sum, cols);
  }
  return Status::OK();
}

Status AddInPlace(Tensor* a, const Tensor& b) {
  if (a->shape() != b.shape()) {
    return Status::InvalidArgument("AddInPlace shape mismatch: " +
                                   a->shape().ToString() + " vs " +
                                   b.shape().ToString());
  }
  Backend()->add(a->data(), b.data(), a->NumElements());
  return Status::OK();
}

std::vector<int64_t> ArgMaxRows(const Tensor& x) {
  RELSERVE_CHECK(x.shape().ndim() == 2);
  const int64_t rows = x.shape().dim(0);
  const int64_t cols = x.shape().dim(1);
  std::vector<int64_t> out(rows);
  const float* data = x.data();
  for (int64_t r = 0; r < rows; ++r) {
    const float* row = data + r * cols;
    int64_t best = 0;
    for (int64_t c = 1; c < cols; ++c) {
      if (row[c] > row[best]) best = c;
    }
    out[r] = best;
  }
  return out;
}

Result<Tensor> Im2Col(const Tensor& image, int64_t kernel_h,
                      int64_t kernel_w, int64_t stride,
                      MemoryTracker* tracker) {
  if (image.shape().ndim() != 3) {
    return Status::InvalidArgument("Im2Col expects [h, w, c], got " +
                                   image.shape().ToString());
  }
  if (stride <= 0) return Status::InvalidArgument("stride must be > 0");
  const int64_t h = image.shape().dim(0);
  const int64_t w = image.shape().dim(1);
  const int64_t c = image.shape().dim(2);
  if (kernel_h > h || kernel_w > w) {
    return Status::InvalidArgument("kernel larger than image");
  }
  const int64_t out_h = (h - kernel_h) / stride + 1;
  const int64_t out_w = (w - kernel_w) / stride + 1;
  const int64_t patch = kernel_h * kernel_w * c;
  RELSERVE_ASSIGN_OR_RETURN(
      Tensor out, Tensor::Create(Shape{out_h * out_w, patch}, tracker));
  const float* src = image.data();
  float* dst = out.data();
  for (int64_t oy = 0; oy < out_h; ++oy) {
    for (int64_t ox = 0; ox < out_w; ++ox) {
      float* patch_dst = dst + (oy * out_w + ox) * patch;
      for (int64_t ky = 0; ky < kernel_h; ++ky) {
        const float* row =
            src + ((oy * stride + ky) * w + ox * stride) * c;
        std::memcpy(patch_dst + ky * kernel_w * c, row,
                    kernel_w * c * sizeof(float));
      }
    }
  }
  return out;
}

Status Im2ColRowsInto(const Tensor& image, int64_t kernel_h,
                      int64_t kernel_w, int64_t stride, int64_t row_lo,
                      int64_t row_hi, Tensor* out) {
  if (image.shape().ndim() != 3) {
    return Status::InvalidArgument("Im2ColRowsInto expects [h, w, c]");
  }
  const int64_t h = image.shape().dim(0);
  const int64_t w = image.shape().dim(1);
  const int64_t c = image.shape().dim(2);
  const int64_t out_w = (w - kernel_w) / stride + 1;
  const int64_t out_h = (h - kernel_h) / stride + 1;
  const int64_t patch = kernel_h * kernel_w * c;
  if (row_lo < 0 || row_hi > out_h * out_w || row_lo > row_hi) {
    return Status::InvalidArgument("im2col row range out of bounds");
  }
  if (out->shape().ndim() != 2 ||
      out->shape().dim(0) != row_hi - row_lo ||
      out->shape().dim(1) != patch) {
    return Status::InvalidArgument("im2col output shape mismatch");
  }
  const float* src = image.data();
  float* dst = out->data();
  for (int64_t row = row_lo; row < row_hi; ++row) {
    const int64_t oy = row / out_w;
    const int64_t ox = row % out_w;
    float* patch_dst = dst + (row - row_lo) * patch;
    for (int64_t ky = 0; ky < kernel_h; ++ky) {
      const float* line =
          src + ((oy * stride + ky) * w + ox * stride) * c;
      std::memcpy(patch_dst + ky * kernel_w * c, line,
                  kernel_w * c * sizeof(float));
    }
  }
  return Status::OK();
}

Result<Tensor> Conv2D(const Tensor& input, const Tensor& kernel,
                      int64_t stride, MemoryTracker* tracker,
                      ThreadPool* pool) {
  if (input.shape().ndim() != 4 || kernel.shape().ndim() != 4) {
    return Status::InvalidArgument(
        "Conv2D expects input [n,h,w,c] and kernel [oc,kh,kw,c]");
  }
  const int64_t n = input.shape().dim(0);
  const int64_t h = input.shape().dim(1);
  const int64_t w = input.shape().dim(2);
  const int64_t c = input.shape().dim(3);
  const int64_t out_c = kernel.shape().dim(0);
  const int64_t kh = kernel.shape().dim(1);
  const int64_t kw = kernel.shape().dim(2);
  if (kernel.shape().dim(3) != c) {
    return Status::InvalidArgument("Conv2D channel mismatch");
  }
  const int64_t out_h = (h - kh) / stride + 1;
  const int64_t out_w = (w - kw) / stride + 1;
  RELSERVE_ASSIGN_OR_RETURN(
      Tensor out,
      Tensor::Create(Shape{n, out_h, out_w, out_c}, tracker));
  // Flattened kernel matrix [out_c, kh*kw*c]; GEMM with transpose_b.
  RELSERVE_ASSIGN_OR_RETURN(Tensor kernel_mat,
                            kernel.Reshape(Shape{out_c, kh * kw * c}));
  const int64_t image_elems = h * w * c;
  const int64_t out_image_elems = out_h * out_w * out_c;
  for (int64_t img = 0; img < n; ++img) {
    // View of one image: shares the input buffer via Reshape of a
    // clone-free slice. Tensor has no slicing, so copy the image view
    // through Im2Col directly using a temporary wrapper.
    RELSERVE_ASSIGN_OR_RETURN(Tensor flat_in,
                              input.Reshape(Shape{n, image_elems}));
    // Build a single-image tensor without copying by reshaping is not
    // possible for img > 0, so copy the image row (charged to tracker).
    RELSERVE_ASSIGN_OR_RETURN(Tensor image,
                              Tensor::Create(Shape{h, w, c}, tracker));
    std::memcpy(image.data(), flat_in.data() + img * image_elems,
                image_elems * sizeof(float));
    RELSERVE_ASSIGN_OR_RETURN(Tensor cols,
                              Im2Col(image, kh, kw, stride, tracker));
    RELSERVE_ASSIGN_OR_RETURN(
        Tensor prod,
        MatMul(cols, kernel_mat, /*transpose_b=*/true, tracker, pool));
    std::memcpy(out.data() + img * out_image_elems, prod.data(),
                out_image_elems * sizeof(float));
  }
  return out;
}

Result<Tensor> MaxPool2x2(const Tensor& input, MemoryTracker* tracker) {
  if (input.shape().ndim() != 4) {
    return Status::InvalidArgument("MaxPool2x2 expects [n,h,w,c]");
  }
  const int64_t n = input.shape().dim(0);
  const int64_t h = input.shape().dim(1);
  const int64_t w = input.shape().dim(2);
  const int64_t c = input.shape().dim(3);
  const int64_t out_h = h / 2;
  const int64_t out_w = w / 2;
  RELSERVE_ASSIGN_OR_RETURN(
      Tensor out, Tensor::Create(Shape{n, out_h, out_w, c}, tracker));
  const float* src = input.data();
  float* dst = out.data();
  for (int64_t img = 0; img < n; ++img) {
    const float* im = src + img * h * w * c;
    float* om = dst + img * out_h * out_w * c;
    for (int64_t oy = 0; oy < out_h; ++oy) {
      for (int64_t ox = 0; ox < out_w; ++ox) {
        for (int64_t ch = 0; ch < c; ++ch) {
          const int64_t y = oy * 2, x = ox * 2;
          float v = im[(y * w + x) * c + ch];
          v = std::max(v, im[(y * w + x + 1) * c + ch]);
          v = std::max(v, im[((y + 1) * w + x) * c + ch]);
          v = std::max(v, im[((y + 1) * w + x + 1) * c + ch]);
          om[(oy * out_w + ox) * c + ch] = v;
        }
      }
    }
  }
  return out;
}

}  // namespace kernels
}  // namespace relserve
