// AVX-VNNI int8 block backend (the `vpdpbusd` pipeline).
//
// VEX-encoded VNNI fuses the maddubs + madd + add triple of the plain
// AVX2 backend into a single u8 x s8 dot-product-accumulate per
// (row, channel) pair and k-step — tripling the ALU throughput
// ceiling of the inner loop. Unlike maddubs there is no saturating
// i16 stage at all: the four byte products are exact i16 values whose
// sum is accumulated into the i32 lane without saturation, for any
// inputs. The lane totals are therefore the same exact integers the
// other backends produce (integer addition commutes across the
// different 2-vs-4 product groupings), so this backend slots under
// the kAvx2 dispatch level with the same bit-identity guarantee.
//
// Per-step i32 lane growth is bounded exactly as in the maddubs
// backend — one group of four shifted-u7 products per lane,
// |sum| <= 4 * 127 * 127 = 64516 — so the same kFastK / kChunkK
// exactness windows apply. The epilogue (hadd-tree reduction +
// vectorized dequant) is shared logic; see int8_kernel_avx2.cc for
// the derivation.
//
// Compiled with -mavx2 -mavxvnni (per-file in src/CMakeLists.txt,
// x86 only); entered only when the running CPU reports AVX-VNNI.

#include "kernels/int8_gemm.h"

#if defined(__AVXVNNI__)

#include <immintrin.h>

namespace relserve {
namespace kernels {
namespace internal {
namespace {

constexpr int64_t kFastK = 1 << 16;
constexpr int64_t kChunkK = 1 << 19;

inline int64_t HsumEpi32(__m256i v) {
  const __m128i lo = _mm256_castsi256_si128(v);
  const __m128i hi = _mm256_extracti128_si256(v, 1);
  __m128i s = _mm_add_epi32(lo, hi);
  s = _mm_add_epi32(s, _mm_srli_si128(s, 8));
  s = _mm_add_epi32(s, _mm_srli_si128(s, 4));
  return static_cast<int64_t>(_mm_cvtsi128_si32(s));
}

int64_t DotOne(const uint8_t* a, const int8_t* w, int64_t kp) {
  int64_t total = 0;
  for (int64_t c0 = 0; c0 < kp; c0 += kChunkK) {
    const int64_t c1 = c0 + kChunkK < kp ? c0 + kChunkK : kp;
    __m256i acc = _mm256_setzero_si256();
    for (int64_t p = c0; p < c1; p += 32) {
      const __m256i va =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + p));
      const __m256i vw =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + p));
      acc = _mm256_dpbusd_avx_epi32(acc, va, vw);
    }
    total += HsumEpi32(acc);
  }
  return total;
}

// The shared dequant expression — must stay textually in sync with
// ScalarGemmBlock in int8_gemm.cc.
inline float Dequant(int64_t dot, int64_t row_sum, float sa, float sw) {
  return static_cast<float>(dot - 64 * row_sum) * (sa * sw);
}

inline __m128i ReduceQuad(__m256i s0, __m256i s1, __m256i s2,
                          __m256i s3) {
  const __m256i v =
      _mm256_hadd_epi32(_mm256_hadd_epi32(s0, s1),
                        _mm256_hadd_epi32(s2, s3));
  return _mm_add_epi32(_mm256_castsi256_si128(v),
                       _mm256_extracti128_si256(v, 1));
}

void VnniGemmBlock(const uint8_t* a, int64_t lda, int64_t rows,
                   const int8_t* w, int64_t ldw, int64_t chans,
                   int64_t kp, const float* a_scales,
                   const float* w_scales, const int64_t* row_sums,
                   float* out, int64_t ldo) {
  int64_t r0 = 0;
  if (kp <= kFastK) {
    for (; r0 + 4 <= rows; r0 += 4) {
      const uint8_t* a0 = a + r0 * lda;
      const uint8_t* a1 = a0 + lda;
      const uint8_t* a2 = a0 + 2 * lda;
      const uint8_t* a3 = a0 + 3 * lda;
      const float sa0 = a_scales[r0];
      const float sa1 = a_scales[r0 + 1];
      const float sa2 = a_scales[r0 + 2];
      const float sa3 = a_scales[r0 + 3];
      int64_t c0 = 0;
      for (; c0 + 2 <= chans; c0 += 2) {
        const int8_t* w0 = w + c0 * ldw;
        const int8_t* w1 = w0 + ldw;
        __m256i s00 = _mm256_setzero_si256();
        __m256i s01 = _mm256_setzero_si256();
        __m256i s10 = _mm256_setzero_si256();
        __m256i s11 = _mm256_setzero_si256();
        __m256i s20 = _mm256_setzero_si256();
        __m256i s21 = _mm256_setzero_si256();
        __m256i s30 = _mm256_setzero_si256();
        __m256i s31 = _mm256_setzero_si256();
        for (int64_t p = 0; p < kp; p += 32) {
          const __m256i vw0 = _mm256_loadu_si256(
              reinterpret_cast<const __m256i*>(w0 + p));
          const __m256i vw1 = _mm256_loadu_si256(
              reinterpret_cast<const __m256i*>(w1 + p));
          __m256i va;
          va = _mm256_loadu_si256(
              reinterpret_cast<const __m256i*>(a0 + p));
          s00 = _mm256_dpbusd_avx_epi32(s00, va, vw0);
          s01 = _mm256_dpbusd_avx_epi32(s01, va, vw1);
          va = _mm256_loadu_si256(
              reinterpret_cast<const __m256i*>(a1 + p));
          s10 = _mm256_dpbusd_avx_epi32(s10, va, vw0);
          s11 = _mm256_dpbusd_avx_epi32(s11, va, vw1);
          va = _mm256_loadu_si256(
              reinterpret_cast<const __m256i*>(a2 + p));
          s20 = _mm256_dpbusd_avx_epi32(s20, va, vw0);
          s21 = _mm256_dpbusd_avx_epi32(s21, va, vw1);
          va = _mm256_loadu_si256(
              reinterpret_cast<const __m256i*>(a3 + p));
          s30 = _mm256_dpbusd_avx_epi32(s30, va, vw0);
          s31 = _mm256_dpbusd_avx_epi32(s31, va, vw1);
        }
        const __m128i q0 = ReduceQuad(s00, s01, s10, s11);
        const __m128i q1 = ReduceQuad(s20, s21, s30, s31);
        const int32_t k0 =
            static_cast<int32_t>(64 * row_sums[c0]);
        const int32_t k1 =
            static_cast<int32_t>(64 * row_sums[c0 + 1]);
        const __m128i corr = _mm_setr_epi32(k0, k1, k0, k1);
        const float sw0 = w_scales[c0];
        const float sw1 = w_scales[c0 + 1];
        const __m128 f0 = _mm_mul_ps(
            _mm_cvtepi32_ps(_mm_sub_epi32(q0, corr)),
            _mm_setr_ps(sa0 * sw0, sa0 * sw1, sa1 * sw0, sa1 * sw1));
        const __m128 f1 = _mm_mul_ps(
            _mm_cvtepi32_ps(_mm_sub_epi32(q1, corr)),
            _mm_setr_ps(sa2 * sw0, sa2 * sw1, sa3 * sw0, sa3 * sw1));
        float* o = out + r0 * ldo + c0;
        _mm_storel_pi(reinterpret_cast<__m64*>(o), f0);
        _mm_storeh_pi(reinterpret_cast<__m64*>(o + ldo), f0);
        _mm_storel_pi(reinterpret_cast<__m64*>(o + 2 * ldo), f1);
        _mm_storeh_pi(reinterpret_cast<__m64*>(o + 3 * ldo), f1);
      }
      for (; c0 < chans; ++c0) {
        const int8_t* wc = w + c0 * ldw;
        out[r0 * ldo + c0] =
            Dequant(DotOne(a0, wc, kp), row_sums[c0], sa0,
                    w_scales[c0]);
        out[(r0 + 1) * ldo + c0] =
            Dequant(DotOne(a1, wc, kp), row_sums[c0], sa1,
                    w_scales[c0]);
        out[(r0 + 2) * ldo + c0] =
            Dequant(DotOne(a2, wc, kp), row_sums[c0], sa2,
                    w_scales[c0]);
        out[(r0 + 3) * ldo + c0] =
            Dequant(DotOne(a3, wc, kp), row_sums[c0], sa3,
                    w_scales[c0]);
      }
    }
  }
  for (; r0 < rows; ++r0) {
    const uint8_t* ar = a + r0 * lda;
    for (int64_t c = 0; c < chans; ++c) {
      out[r0 * ldo + c] = Dequant(DotOne(ar, w + c * ldw, kp),
                                  row_sums[c], a_scales[r0],
                                  w_scales[c]);
    }
  }
}

constexpr Int8Backend kVnniInt8Backend = {
    SimdLevel::kAvx2, "avx2-vnni", VnniGemmBlock};

}  // namespace

const Int8Backend* GetVnniInt8Backend() {
  // One cpuid consult; the OSXSAVE/ymm-state check is covered by the
  // kAvx2 gate every caller already passed through.
  static const bool supported = __builtin_cpu_supports("avxvnni");
  return supported ? &kVnniInt8Backend : nullptr;
}

}  // namespace internal
}  // namespace kernels
}  // namespace relserve

#else  // !__AVXVNNI__: non-x86 target, old compiler, or flags absent

namespace relserve {
namespace kernels {
namespace internal {

const Int8Backend* GetVnniInt8Backend() { return nullptr; }

}  // namespace internal
}  // namespace kernels
}  // namespace relserve

#endif
