#include "kernels/sparse_gemm.h"

#include <algorithm>

#include "kernels/cpu_features.h"

namespace relserve {
namespace kernels {

namespace {

// Rows accumulated per CSR walk. The activation chunk is transposed
// into a [k, 8] lane-major scratch so one pass over a channel's
// nonzeros updates 8 row accumulators from a single contiguous
// 8-float load per nonzero — the index/value loads amortize and the
// CPU gets 8 independent fp32 add chains instead of one latency-bound
// chain. Each lane still sums the same values in the same
// ascending-index mul-then-add order, so results are bit-identical to
// the single-row walk.
constexpr int64_t kSparseRowChunk = 8;

void ScalarCsrDot8(const float* xT, const int32_t* cols,
                   const float* vals, int64_t nnz, float* acc) {
  float local[kSparseRowChunk] = {};
  for (int64_t i = 0; i < nnz; ++i) {
    const float wv = vals[i];
    const float* lane = xT + static_cast<int64_t>(cols[i]) * 8;
    for (int64_t r = 0; r < kSparseRowChunk; ++r) {
      local[r] += lane[r] * wv;
    }
  }
  for (int64_t r = 0; r < kSparseRowChunk; ++r) acc[r] = local[r];
}

internal::CsrDot8Fn PickCsrDot8() {
  if (ActiveSimdLevel() == SimdLevel::kAvx2) {
    const internal::CsrDot8Fn avx2 = internal::GetAvx2CsrDot8();
    if (avx2 != nullptr) return avx2;
  }
  return ScalarCsrDot8;
}

}  // namespace

namespace internal {

void CsrBlockDot(const float* x0, int64_t k, int64_t rows,
                 const CsrWeight& w, int64_t c0, int64_t bw, float* y,
                 int64_t ldy) {
  const CsrDot8Fn dot8 = PickCsrDot8();
  // Lane-major transpose scratch; zero lanes for a partial tail chunk
  // contribute exact zeros that are discarded on writeback.
  std::vector<float> xT(static_cast<size_t>(k * kSparseRowChunk));
  float acc[kSparseRowChunk];
  for (int64_t r0 = 0; r0 < rows; r0 += kSparseRowChunk) {
    const int64_t rt = std::min(kSparseRowChunk, rows - r0);
    for (int64_t p = 0; p < k; ++p) {
      float* lane = xT.data() + p * kSparseRowChunk;
      for (int64_t r = 0; r < rt; ++r) {
        lane[r] = x0[(r0 + r) * k + p];
      }
      for (int64_t r = rt; r < kSparseRowChunk; ++r) lane[r] = 0.0f;
    }
    for (int64_t c = 0; c < bw; ++c) {
      const int64_t o = c0 + c;
      const int64_t lo = w.row_ptr[static_cast<size_t>(o)];
      const int64_t hi = w.row_ptr[static_cast<size_t>(o + 1)];
      dot8(xT.data(), w.col_idx.data() + lo, w.values.data() + lo,
           hi - lo, acc);
      for (int64_t r = 0; r < rt; ++r) {
        y[(r0 + r) * ldy + c] = acc[r];
      }
    }
  }
}

}  // namespace internal

Result<double> MeasureWeightDensity(const Tensor& w) {
  if (w.shape().ndim() != 2) {
    return Status::InvalidArgument("density expects a matrix weight");
  }
  const int64_t total = w.NumElements();
  if (total == 0) return 0.0;
  const float* data = w.data();
  int64_t nnz = 0;
  for (int64_t i = 0; i < total; ++i) nnz += data[i] != 0.0f;
  return static_cast<double>(nnz) / static_cast<double>(total);
}

Result<CsrWeight> BuildCsrWeight(const Tensor& w) {
  if (w.shape().ndim() != 2) {
    return Status::InvalidArgument("CSR weight must be a matrix");
  }
  CsrWeight csr;
  csr.out = w.shape().dim(0);
  csr.in = w.shape().dim(1);
  csr.row_ptr.reserve(static_cast<size_t>(csr.out + 1));
  csr.row_ptr.push_back(0);
  const float* data = w.data();
  for (int64_t o = 0; o < csr.out; ++o) {
    const float* row = data + o * csr.in;
    for (int64_t p = 0; p < csr.in; ++p) {
      if (row[p] != 0.0f) {
        csr.col_idx.push_back(static_cast<int32_t>(p));
        csr.values.push_back(row[p]);
      }
    }
    csr.row_ptr.push_back(static_cast<int64_t>(csr.values.size()));
  }
  return csr;
}

Status SparseGemmTransBInto(const Tensor& a, const CsrWeight& w,
                            Tensor* out, ThreadPool* pool) {
  if (a.shape().ndim() != 2 || out->shape().ndim() != 2) {
    return Status::InvalidArgument("sparse gemm expects matrices");
  }
  const int64_t m = a.shape().dim(0);
  const int64_t k = a.shape().dim(1);
  if (k != w.in || out->shape().dim(0) != m ||
      out->shape().dim(1) != w.out) {
    return Status::InvalidArgument("sparse gemm shape mismatch");
  }
  if (m == 0 || w.out == 0) return Status::OK();
  const float* src = a.data();
  float* dst = out->data();
  // Row morsels over the batch: every (row, channel) output is one
  // ascending-index chain owned by one worker — deterministic.
  auto run_rows = [&](int64_t r_lo, int64_t r_hi) {
    internal::CsrBlockDot(src + r_lo * k, k, r_hi - r_lo, w, 0, w.out,
                          dst + r_lo * w.out, w.out);
  };
  if (pool != nullptr && m >= 2) {
    pool->ParallelFor(0, m, run_rows, /*grain=*/0,
                      /*work_hint=*/2 * m * w.nnz());
  } else {
    run_rows(0, m);
  }
  return Status::OK();
}

}  // namespace kernels
}  // namespace relserve
