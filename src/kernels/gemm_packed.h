// Cache-blocked packed GEMM driver — the single entry point every
// public matrix product in kernels.h lowers to.
//
// Computes, over row-major storage,
//   C[m, n] ⊕= op_a(A) * op_b(B)
// where op is optional transposition handled entirely inside the pack
// routines: trans_a reads logical A[i, p] from a[p * lda + i] (the
// dW = dZ^T * X contraction), trans_b reads logical B[p, j] from
// b[j * ldb + p] (the x * W^T weight layout). ⊕ is += when
// `accumulate`, plain assignment otherwise.
//
// Blocking follows the classical three-loop (nc, kc, mc) scheme of
// micro_kernel.h; `pool` (nullable) parallelizes over the packed
// mc-high macro-tiles of one (jc, pc) iteration, with the B panel
// packed once and shared read-only across workers. Tiles partition C
// rows and the kc blocks advance sequentially, so every output element
// keeps one fixed ascending-k accumulation chain: results are
// identical no matter how morsels land on threads.

#ifndef RELSERVE_KERNELS_GEMM_PACKED_H_
#define RELSERVE_KERNELS_GEMM_PACKED_H_

#include <cstdint>

#include "common/status.h"
#include "resource/thread_pool.h"

namespace relserve {
namespace kernels {
namespace internal {

// Fails only when a packing panel cannot be allocated (OutOfMemory).
Status GemmPacked(int64_t m, int64_t n, int64_t k, const float* a,
                  int64_t lda, bool trans_a, const float* b, int64_t ldb,
                  bool trans_b, float* c, int64_t ldc, bool accumulate,
                  ThreadPool* pool);

}  // namespace internal
}  // namespace kernels
}  // namespace relserve

#endif  // RELSERVE_KERNELS_GEMM_PACKED_H_
