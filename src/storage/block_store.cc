#include "storage/block_store.h"

#include <algorithm>
#include <cstring>

namespace relserve {

BlockStore::~BlockStore() {
  for (const BlockEntry& entry : entries_) {
    if (entry.shared()) {
      // The index owns the pages; they die with the last reference.
      index_->Release(entry.physical);
      continue;
    }
    for (const PageId page_id : entry.pages) {
      // Best effort: a failure here only delays reuse.
      pool_->DeletePage(page_id);
    }
  }
}

Status BlockStore::Put(const TensorBlock& block) {
  if (block.data.shape().ndim() != 2) {
    return Status::InvalidArgument("block payload must be a matrix");
  }
  BlockEntry entry;
  entry.row_block = block.row_block;
  entry.col_block = block.col_block;
  entry.rows = block.data.shape().dim(0);
  entry.cols = block.data.shape().dim(1);
  if (index_ != nullptr) {
    RELSERVE_ASSIGN_OR_RETURN(
        PhysicalBlockIndex::Interned interned,
        index_->Intern(block.data, tolerance_));
    entry.pages = std::move(interned.pages);
    entry.physical = interned.id;
    std::lock_guard<std::mutex> lock(entries_mu_);
    if (interned.deduped) {
      shared_blocks_ += 1;
      shared_bytes_ += entry.ByteSize();
    }
    entries_.push_back(std::move(entry));
    return Status::OK();
  }
  const char* src = reinterpret_cast<const char*>(block.data.data());
  int64_t remaining = entry.ByteSize();
  while (remaining > 0) {
    PageId page_id = kInvalidPageId;
    RELSERVE_ASSIGN_OR_RETURN(char* page, pool_->NewPage(&page_id));
    const int64_t chunk = std::min(remaining, kPageSize);
    std::memcpy(page, src, chunk);
    RELSERVE_RETURN_NOT_OK(pool_->UnpinPage(page_id, /*dirty=*/true));
    entry.pages.push_back(page_id);
    src += chunk;
    remaining -= chunk;
  }
  {
    std::lock_guard<std::mutex> lock(entries_mu_);
    entries_.push_back(std::move(entry));
  }
  return Status::OK();
}

Status BlockStore::PutMatrix(const Tensor& m, MemoryTracker* scratch) {
  if (m.shape().ndim() != 2) {
    return Status::InvalidArgument("PutMatrix expects a matrix");
  }
  if (m.shape().dim(0) != geometry_.rows ||
      m.shape().dim(1) != geometry_.cols) {
    return Status::InvalidArgument(
        "matrix shape " + m.shape().ToString() +
        " does not match store geometry");
  }
  for (int64_t rb = 0; rb < geometry_.NumRowBlocks(); ++rb) {
    for (int64_t cb = 0; cb < geometry_.NumColBlocks(); ++cb) {
      RELSERVE_ASSIGN_OR_RETURN(
          TensorBlock block, ExtractBlock(m, geometry_, rb, cb, scratch));
      RELSERVE_RETURN_NOT_OK(Put(block));
    }
  }
  return Status::OK();
}

Result<TensorBlock> BlockStore::Get(const BlockEntry& entry,
                                    MemoryTracker* tracker,
                                    int64_t* prefetch_hits) const {
  RELSERVE_ASSIGN_OR_RETURN(
      Tensor payload,
      Tensor::Create(Shape{entry.rows, entry.cols}, tracker));
  char* dst = reinterpret_cast<char*>(payload.data());
  int64_t remaining = entry.ByteSize();
  for (const PageId page_id : entry.pages) {
    bool prefetch_hit = false;
    RELSERVE_ASSIGN_OR_RETURN(char* page,
                              pool_->FetchPage(page_id, &prefetch_hit));
    if (prefetch_hit && prefetch_hits != nullptr) ++*prefetch_hits;
    const int64_t chunk = std::min(remaining, kPageSize);
    std::memcpy(dst, page, chunk);
    RELSERVE_RETURN_NOT_OK(pool_->UnpinPage(page_id, /*dirty=*/false));
    dst += chunk;
    remaining -= chunk;
  }
  if (remaining != 0) {
    return Status::Internal("block entry page list too short");
  }
  return TensorBlock{entry.row_block, entry.col_block,
                     std::move(payload)};
}

int64_t BlockStore::PrefetchEntry(const BlockEntry& entry) const {
  int64_t issued = 0;
  for (const PageId page_id : entry.pages) {
    if (pool_->Prefetch(page_id)) ++issued;
  }
  return issued;
}

Result<Tensor> BlockStore::ToMatrix(MemoryTracker* tracker) const {
  RELSERVE_ASSIGN_OR_RETURN(
      Tensor out,
      Tensor::Zeros(Shape{geometry_.rows, geometry_.cols}, tracker));
  const int64_t stride = geometry_.cols;
  for (const BlockEntry& entry : entries_) {
    RELSERVE_ASSIGN_OR_RETURN(TensorBlock block, Get(entry, nullptr));
    const int64_t row0 = entry.row_block * geometry_.block_rows;
    const int64_t col0 = entry.col_block * geometry_.block_cols;
    for (int64_t r = 0; r < entry.rows; ++r) {
      std::memcpy(out.data() + (row0 + r) * stride + col0,
                  block.data.data() + r * entry.cols,
                  entry.cols * sizeof(float));
    }
  }
  return out;
}

int64_t BlockStore::TotalBytes() const {
  int64_t total = 0;
  for (const BlockEntry& entry : entries_) total += entry.ByteSize();
  return total;
}

}  // namespace relserve
