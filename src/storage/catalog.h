// Catalog: name -> table / tensor-relation metadata.
//
// The paper (Sec. 4) notes that managing models inside the RDBMS lets
// the catalog bind models, weights-as-relations, and the tables they
// serve. Here the catalog owns row tables (TableHeap + Schema) and
// tensor relations (BlockStore + geometry).

#ifndef RELSERVE_STORAGE_CATALOG_H_
#define RELSERVE_STORAGE_CATALOG_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "relational/schema.h"
#include "storage/block_store.h"
#include "storage/column_store.h"
#include "storage/mvcc.h"
#include "storage/table_heap.h"

namespace relserve {

// Physical layout of a row table: record-at-a-time heap pages, or the
// fragment-partitioned column store (CREATE TABLE ... STORAGE
// COLUMNAR).
enum class TableLayout { kRow, kColumnar };

struct TableInfo {
  std::string name;
  Schema schema;
  // Exactly one of the two is set, per `layout`.
  TableLayout layout = TableLayout::kRow;
  std::unique_ptr<TableHeap> heap;
  std::unique_ptr<ColumnarTable> columnar;
  // Per-row begin/end version intervals; rows appended outside the
  // MVCC write path are untracked and visible at every snapshot.
  std::unique_ptr<VisibilityMap> visibility;

  int64_t num_rows() const {
    return heap != nullptr ? heap->num_records() : columnar->num_rows();
  }
};

class Catalog {
 public:
  explicit Catalog(BufferPool* pool) : pool_(pool) {}

  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  // Creates an empty table; AlreadyExists if the name is taken.
  Result<TableInfo*> CreateTable(const std::string& name, Schema schema,
                                 TableLayout layout = TableLayout::kRow);

  Result<TableInfo*> GetTable(const std::string& name);

  // Creates an empty tensor relation with the given block geometry.
  Result<BlockStore*> CreateTensorRelation(const std::string& name,
                                           BlockedShape geometry);

  Result<BlockStore*> GetTensorRelation(const std::string& name);

  std::vector<std::string> TableNames() const;
  std::vector<std::string> TensorRelationNames() const;

  BufferPool* pool() { return pool_; }

 private:
  BufferPool* const pool_;
  std::unordered_map<std::string, std::unique_ptr<TableInfo>> tables_;
  std::unordered_map<std::string, std::unique_ptr<BlockStore>>
      tensor_relations_;
};

}  // namespace relserve

#endif  // RELSERVE_STORAGE_CATALOG_H_
