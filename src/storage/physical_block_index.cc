#include "storage/physical_block_index.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/crc32c.h"

namespace relserve {

namespace {

// Mean of a payload; the cheap prefilter before the full elementwise
// comparison in tolerance mode (|mean(a) - mean(b)| <= max|a - b|, so
// a mean gap beyond the tolerance rules the candidate out).
float BlockMean(const Tensor& t) {
  const float* data = t.data();
  const int64_t n = t.NumElements();
  if (n == 0) return 0.0f;
  double sum = 0.0;
  for (int64_t i = 0; i < n; ++i) sum += data[i];
  return static_cast<float>(sum / n);
}

// Compares `n` floats of candidate data against payload data starting
// at `offset` floats. Byte-exact at tolerance 0; bounded L-infinity
// with early exit otherwise. Returns false as soon as the bound is
// exceeded.
bool CompareChunk(const float* candidate, const float* payload,
                  int64_t n, float tolerance, float* max_diff) {
  if (tolerance == 0.0f) {
    return std::memcmp(candidate, payload,
                       static_cast<size_t>(n) * sizeof(float)) == 0;
  }
  for (int64_t i = 0; i < n; ++i) {
    const float d = std::fabs(candidate[i] - payload[i]);
    if (d > tolerance) return false;
    if (d > *max_diff) *max_diff = d;
  }
  return true;
}

}  // namespace

std::string PhysicalBlockStats::ToString() const {
  return "unique=" + std::to_string(unique_blocks) +
         " refs=" + std::to_string(logical_refs) +
         " physical_bytes=" + std::to_string(physical_bytes) +
         " logical_bytes=" + std::to_string(logical_bytes) +
         " interned=" + std::to_string(interned) +
         " hits=" + std::to_string(dedup_hits) +
         " freed=" + std::to_string(freed_blocks) +
         " max_err=" + std::to_string(max_substitution_error);
}

PhysicalBlockIndex::~PhysicalBlockIndex() {
  for (const auto& [id, block] : blocks_) {
    (void)id;
    for (const PageId page_id : block.pages) {
      // Best effort: a failure here only delays reuse.
      if (pool_ != nullptr) pool_->DeletePage(page_id);
    }
  }
}

Result<bool> PhysicalBlockIndex::PayloadMatches(
    const Block& block, const Tensor& payload, float tolerance,
    float* max_diff) const {
  *max_diff = 0.0f;
  if (block.resident) {
    return CompareChunk(block.payload.data(), payload.data(),
                        payload.NumElements(), tolerance, max_diff);
  }
  const float* src = payload.data();
  int64_t remaining = block.bytes;
  for (const PageId page_id : block.pages) {
    RELSERVE_ASSIGN_OR_RETURN(char* page, pool_->FetchPage(page_id));
    const int64_t chunk = std::min(remaining, kPageSize);
    const bool ok = CompareChunk(reinterpret_cast<const float*>(page),
                                 src, chunk / sizeof(float), tolerance,
                                 max_diff);
    RELSERVE_RETURN_NOT_OK(pool_->UnpinPage(page_id, /*dirty=*/false));
    if (!ok) return false;
    src += chunk / sizeof(float);
    remaining -= chunk;
  }
  return remaining == 0;
}

Result<PhysicalBlockId> PhysicalBlockIndex::FindMatch(
    const Tensor& payload, uint32_t crc, float mean, float tolerance,
    bool resident, float* match_error) const {
  *match_error = 0.0f;
  // Exact arm first: a CRC32C hit narrowed to the same shape is
  // almost certainly the block; the byte compare only guards against
  // a 2^-32 collision.
  const auto [lo, hi] = by_hash_.equal_range(HashKey(crc, resident));
  for (auto it = lo; it != hi; ++it) {
    const Block& candidate = blocks_.at(it->second);
    if (candidate.shape != payload.shape()) continue;
    float diff = 0.0f;
    RELSERVE_ASSIGN_OR_RETURN(
        bool match,
        PayloadMatches(candidate, payload, /*tolerance=*/0.0f, &diff));
    if (match) return it->second;
  }
  if (tolerance <= 0.0f) return kInvalidPhysicalBlockId;
  // Accuracy-aware arm: scan the shape bucket with the mean
  // prefilter, accept the first candidate within the L-infinity
  // bound (first-fit, matching the seed offline semantics).
  const auto bucket =
      by_shape_.find({payload.shape().ToString(), resident});
  if (bucket == by_shape_.end()) return kInvalidPhysicalBlockId;
  for (const PhysicalBlockId id : bucket->second) {
    const Block& candidate = blocks_.at(id);
    if (std::fabs(candidate.mean - mean) > tolerance) continue;
    float diff = 0.0f;
    RELSERVE_ASSIGN_OR_RETURN(
        bool match,
        PayloadMatches(candidate, payload, tolerance, &diff));
    if (match) {
      *match_error = diff;
      return id;
    }
  }
  return kInvalidPhysicalBlockId;
}

Result<PhysicalBlockIndex::Interned> PhysicalBlockIndex::InternImpl(
    const Tensor& payload, float tolerance, bool resident,
    MemoryTracker* tracker) {
  if (!payload.is_valid() || payload.NumElements() == 0) {
    return Status::InvalidArgument("cannot intern an empty payload");
  }
  if (tolerance < 0.0f) {
    return Status::InvalidArgument("negative dedup tolerance");
  }
  if (!resident && pool_ == nullptr) {
    return Status::InvalidArgument(
        "page-backed intern needs a buffer pool");
  }
  const uint32_t crc = crc32c::Value(
      reinterpret_cast<const char*>(payload.data()),
      static_cast<size_t>(payload.ByteSize()));
  const float mean = BlockMean(payload);

  std::lock_guard<std::mutex> lock(mu_);
  stats_.interned += 1;

  float match_error = 0.0f;
  RELSERVE_ASSIGN_OR_RETURN(
      PhysicalBlockId match,
      FindMatch(payload, crc, mean, tolerance, resident, &match_error));
  if (match != kInvalidPhysicalBlockId) {
    Block& block = blocks_.at(match);
    block.refs += 1;
    stats_.dedup_hits += 1;
    stats_.logical_refs += 1;
    stats_.logical_bytes += block.bytes;
    if (match_error > stats_.max_substitution_error) {
      stats_.max_substitution_error = match_error;
    }
    Interned out;
    out.id = match;
    out.pages = block.pages;
    out.payload = block.payload;  // shares the canonical buffer
    out.deduped = true;
    out.match_error = match_error;
    return out;
  }

  // Miss: this payload becomes a new physical block.
  Block block;
  block.shape = payload.shape();
  block.crc = crc;
  block.bytes = payload.ByteSize();
  block.refs = 1;
  block.mean = mean;
  block.resident = resident;
  if (resident) {
    if (tracker != nullptr) {
      RELSERVE_ASSIGN_OR_RETURN(block.payload,
                                payload.Clone(tracker));
    } else {
      block.payload = payload;  // share the input buffer
    }
  } else {
    const char* src = reinterpret_cast<const char*>(payload.data());
    int64_t remaining = block.bytes;
    Status write_status = Status::OK();
    while (remaining > 0) {
      PageId page_id = kInvalidPageId;
      Result<char*> page = pool_->NewPage(&page_id);
      if (!page.ok()) {
        write_status = page.status();
        break;
      }
      const int64_t chunk = std::min(remaining, kPageSize);
      std::memcpy(*page, src, chunk);
      write_status = pool_->UnpinPage(page_id, /*dirty=*/true);
      block.pages.push_back(page_id);
      if (!write_status.ok()) break;
      src += chunk;
      remaining -= chunk;
    }
    if (!write_status.ok()) {
      for (const PageId page_id : block.pages) {
        pool_->DeletePage(page_id);
      }
      return write_status;
    }
  }

  const PhysicalBlockId id = next_id_++;
  by_hash_.emplace(HashKey(crc, resident), id);
  by_shape_[{block.shape.ToString(), resident}].push_back(id);
  stats_.unique_blocks += 1;
  stats_.logical_refs += 1;
  stats_.physical_bytes += block.bytes;
  stats_.logical_bytes += block.bytes;

  Interned out;
  out.id = id;
  out.pages = block.pages;
  out.payload = block.payload;
  out.deduped = false;
  blocks_.emplace(id, std::move(block));
  return out;
}

Result<PhysicalBlockIndex::Interned> PhysicalBlockIndex::Intern(
    const Tensor& payload, float tolerance) {
  return InternImpl(payload, tolerance, /*resident=*/false, nullptr);
}

Result<PhysicalBlockIndex::Interned>
PhysicalBlockIndex::InternResident(const Tensor& payload,
                                   float tolerance,
                                   MemoryTracker* tracker) {
  return InternImpl(payload, tolerance, /*resident=*/true, tracker);
}

Status PhysicalBlockIndex::AddRef(PhysicalBlockId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = blocks_.find(id);
  if (it == blocks_.end()) {
    return Status::NotFound("physical block " + std::to_string(id));
  }
  it->second.refs += 1;
  stats_.logical_refs += 1;
  stats_.logical_bytes += it->second.bytes;
  return Status::OK();
}

void PhysicalBlockIndex::Unindex(PhysicalBlockId id,
                                 const Block& block) {
  const auto [lo, hi] =
      by_hash_.equal_range(HashKey(block.crc, block.resident));
  for (auto it = lo; it != hi; ++it) {
    if (it->second == id) {
      by_hash_.erase(it);
      break;
    }
  }
  const auto bucket =
      by_shape_.find({block.shape.ToString(), block.resident});
  if (bucket != by_shape_.end()) {
    auto& ids = bucket->second;
    ids.erase(std::remove(ids.begin(), ids.end(), id), ids.end());
    if (ids.empty()) by_shape_.erase(bucket);
  }
}

void PhysicalBlockIndex::Release(PhysicalBlockId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = blocks_.find(id);
  if (it == blocks_.end()) return;
  Block& block = it->second;
  block.refs -= 1;
  stats_.logical_refs -= 1;
  stats_.logical_bytes -= block.bytes;
  if (block.refs > 0) return;
  // Last reference: the physical block dies. Pages go back to the
  // free list; a resident canonical buffer dies with the Tensor.
  for (const PageId page_id : block.pages) {
    if (pool_ != nullptr) pool_->DeletePage(page_id);
  }
  Unindex(id, block);
  stats_.unique_blocks -= 1;
  stats_.physical_bytes -= block.bytes;
  stats_.freed_blocks += 1;
  blocks_.erase(it);
}

Result<Tensor> PhysicalBlockIndex::Materialize(
    PhysicalBlockId id, MemoryTracker* tracker) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = blocks_.find(id);
  if (it == blocks_.end()) {
    return Status::NotFound("physical block " + std::to_string(id));
  }
  const Block& block = it->second;
  if (block.resident) return block.payload;
  RELSERVE_ASSIGN_OR_RETURN(Tensor out,
                            Tensor::Create(block.shape, tracker));
  char* dst = reinterpret_cast<char*>(out.data());
  int64_t remaining = block.bytes;
  for (const PageId page_id : block.pages) {
    RELSERVE_ASSIGN_OR_RETURN(char* page, pool_->FetchPage(page_id));
    const int64_t chunk = std::min(remaining, kPageSize);
    std::memcpy(dst, page, chunk);
    RELSERVE_RETURN_NOT_OK(pool_->UnpinPage(page_id, /*dirty=*/false));
    dst += chunk;
    remaining -= chunk;
  }
  if (remaining != 0) {
    return Status::Internal("physical block page list too short");
  }
  return out;
}

PhysicalBlockStats PhysicalBlockIndex::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

// --- Offline block deduplication -------------------------------------

std::string DedupStats::ToString() const {
  return "blocks " + std::to_string(input_blocks) + " -> " +
         std::to_string(unique_blocks) + ", bytes " +
         std::to_string(input_bytes) + " -> " +
         std::to_string(stored_bytes) +
         ", max_err=" + std::to_string(max_substitution_error);
}

Result<DedupResult> DeduplicateBlocks(
    const std::vector<TensorBlock>& blocks, float tolerance) {
  if (tolerance < 0.0f) {
    return Status::InvalidArgument("negative dedup tolerance");
  }
  // A transient resident-arm index does all the matching; payloads
  // are shared with the inputs, never copied.
  PhysicalBlockIndex index(/*pool=*/nullptr);
  DedupResult out;
  out.mapping.reserve(blocks.size());
  out.logical_coords.reserve(blocks.size());
  std::unordered_map<PhysicalBlockId, int64_t> unique_of;
  for (const TensorBlock& block : blocks) {
    out.logical_coords.emplace_back(block.row_block, block.col_block);
    out.stats.input_blocks += 1;
    out.stats.input_bytes += block.data.ByteSize();
    RELSERVE_ASSIGN_OR_RETURN(
        PhysicalBlockIndex::Interned interned,
        index.InternResident(block.data, tolerance));
    if (interned.deduped) {
      out.mapping.push_back(unique_of.at(interned.id));
      if (interned.match_error > out.stats.max_substitution_error) {
        out.stats.max_substitution_error = interned.match_error;
      }
    } else {
      const int64_t u =
          static_cast<int64_t>(out.unique_blocks.size());
      unique_of.emplace(interned.id, u);
      out.mapping.push_back(u);
      out.unique_blocks.push_back(
          TensorBlock{block.row_block, block.col_block,
                      interned.payload});
      out.stats.stored_bytes += block.data.ByteSize();
    }
  }
  out.stats.unique_blocks =
      static_cast<int64_t>(out.unique_blocks.size());
  return out;
}

std::vector<TensorBlock> ExpandDedup(const DedupResult& dedup) {
  std::vector<TensorBlock> out;
  out.reserve(dedup.mapping.size());
  for (size_t i = 0; i < dedup.mapping.size(); ++i) {
    TensorBlock block = dedup.unique_blocks[dedup.mapping[i]];
    // Payload is shared; coordinates are the logical position's.
    block.row_block = dedup.logical_coords[i].first;
    block.col_block = dedup.logical_coords[i].second;
    out.push_back(std::move(block));
  }
  return out;
}

}  // namespace relserve
