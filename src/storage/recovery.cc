#include "storage/recovery.h"

#include <unordered_map>
#include <vector>

#include "common/failpoint.h"
#include "relational/row.h"

namespace relserve {

namespace {

Status ReplayInsert(TableInfo* table, const std::string& row_bytes,
                    Version version) {
  table->visibility->PadTo(table->num_rows());
  if (table->heap != nullptr) {
    RELSERVE_RETURN_NOT_OK(table->heap->Append(row_bytes));
  } else {
    RELSERVE_ASSIGN_OR_RETURN(
        Row row, Row::Deserialize(
                     row_bytes.data(),
                     static_cast<int64_t>(row_bytes.size())));
    RELSERVE_RETURN_NOT_OK(table->columnar->AppendRow(row));
  }
  table->visibility->AppendRow(version);
  return Status::OK();
}

}  // namespace

Result<RecoveryStats> RecoverCatalog(const std::string& wal_path,
                                     Catalog* catalog,
                                     VersionClock* clock) {
  RELSERVE_RETURN_NOT_OK(failpoint::InjectedStatus("wal.recover"));

  RecoveryStats stats;
  bool torn = false;
  Result<std::vector<WalRecord>> read =
      WriteAheadLog::ReadAll(wal_path, &torn);
  if (read.status().code() == StatusCode::kNotFound) {
    return stats;  // no log yet: cold start
  }
  RELSERVE_RETURN_NOT_OK(read.status());
  const std::vector<WalRecord>& records = *read;
  stats.torn_tail = torn;
  stats.records_scanned = static_cast<int64_t>(records.size());
  if (!records.empty()) stats.last_durable_lsn = records.back().lsn;

  // Analysis: which transactions have a surviving commit record, and
  // at what version.
  std::unordered_map<uint64_t, Version> commit_version;
  for (const WalRecord& rec : records) {
    if (rec.type == WalRecord::Type::kCommit) {
      commit_version[rec.txn_id] = rec.commit_version;
      ++stats.committed_txns;
      if (rec.commit_version > stats.max_version) {
        stats.max_version = rec.commit_version;
      }
    }
  }

  // Redo committed ops in LSN order.
  for (const WalRecord& rec : records) {
    if (rec.type == WalRecord::Type::kCommit) continue;
    auto it = commit_version.find(rec.txn_id);
    if (it == commit_version.end()) {
      ++stats.dropped_uncommitted_ops;
      continue;
    }
    const Version v = it->second;
    switch (rec.type) {
      case WalRecord::Type::kCreateTable: {
        RELSERVE_ASSIGN_OR_RETURN(
            Schema schema,
            DecodeSchema(rec.schema_encoding.data(),
                         static_cast<int64_t>(
                             rec.schema_encoding.size())));
        RELSERVE_RETURN_NOT_OK(
            catalog
                ->CreateTable(rec.table, std::move(schema),
                              static_cast<TableLayout>(rec.layout))
                .status());
        break;
      }
      case WalRecord::Type::kInsert: {
        RELSERVE_ASSIGN_OR_RETURN(TableInfo * table,
                                  catalog->GetTable(rec.table));
        RELSERVE_RETURN_NOT_OK(
            ReplayInsert(table, rec.row_bytes, v));
        break;
      }
      case WalRecord::Type::kUpdate: {
        RELSERVE_ASSIGN_OR_RETURN(TableInfo * table,
                                  catalog->GetTable(rec.table));
        RELSERVE_RETURN_NOT_OK(
            table->visibility->MarkDeleted(rec.ordinal, v));
        RELSERVE_RETURN_NOT_OK(
            ReplayInsert(table, rec.row_bytes, v));
        break;
      }
      case WalRecord::Type::kDelete: {
        RELSERVE_ASSIGN_OR_RETURN(TableInfo * table,
                                  catalog->GetTable(rec.table));
        RELSERVE_RETURN_NOT_OK(
            table->visibility->MarkDeleted(rec.ordinal, v));
        break;
      }
      case WalRecord::Type::kCommit:
        break;
    }
    ++stats.replayed_ops;
  }

  if (stats.max_version > 0) clock->AdvanceTo(stats.max_version);
  return stats;
}

}  // namespace relserve
