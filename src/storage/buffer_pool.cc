#include "storage/buffer_pool.h"

#include <cstring>
#include <limits>

#include "common/failpoint.h"
#include "common/logging.h"

namespace relserve {

std::string BufferPoolStats::ToString() const {
  return "hits=" + std::to_string(hits) +
         " misses=" + std::to_string(misses) +
         " evictions=" + std::to_string(evictions) +
         " prefetches_issued=" + std::to_string(prefetches_issued) +
         " prefetches_completed=" +
         std::to_string(prefetches_completed) +
         " prefetch_useful=" + std::to_string(prefetch_useful) +
         " prefetch_failed=" + std::to_string(prefetch_failed) +
         " writeback_failures=" + std::to_string(writeback_failures);
}

BufferPool::BufferPool(DiskManager* disk, int64_t capacity_pages)
    : disk_(disk), capacity_pages_(capacity_pages) {
  RELSERVE_CHECK(capacity_pages >= 1);
  frames_.resize(capacity_pages);
}

BufferPool::~BufferPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    prefetch_stop_ = true;
  }
  prefetch_cv_.notify_all();
  if (prefetcher_.joinable()) prefetcher_.join();
}

Result<int64_t> BufferPool::ReserveFrame(
    std::unique_lock<std::mutex>& lock) {
  std::unordered_set<int64_t> failed_victims;
  Status last_error = Status::OK();
  while (true) {
    // First preference: a frame never used (and not reserved by
    // another thread's in-flight load). Re-scanned every round — a
    // frame may have freed while the lock was dropped for a failed
    // write-back below.
    for (int64_t i = 0; i < capacity_pages_; ++i) {
      if (frames_[i].page_id == kInvalidPageId &&
          !frames_[i].io_pending) {
        if (frames_[i].data == nullptr) {
          frames_[i].data = std::make_unique<char[]>(kPageSize);
        }
        frames_[i].io_pending = true;
        return i;
      }
    }
    // Otherwise evict the least-recently-used unpinned, unlatched
    // frame that has not already refused to write back this call.
    int64_t victim = -1;
    uint64_t oldest = std::numeric_limits<uint64_t>::max();
    for (int64_t i = 0; i < capacity_pages_; ++i) {
      if (frames_[i].pin_count == 0 && !frames_[i].io_pending &&
          failed_victims.count(i) == 0 &&
          frames_[i].last_used < oldest) {
        oldest = frames_[i].last_used;
        victim = i;
      }
    }
    if (victim < 0) {
      if (!failed_victims.empty()) {
        // Every evictable page refused to persist. The dirty frames
        // stay resident (nothing was lost), but no capacity can be
        // made — a transient, retryable condition, unlike OutOfMemory.
        return Status::Unavailable(
            "buffer pool: write-back failed for all " +
            std::to_string(failed_victims.size()) +
            " eviction candidates (last: " + last_error.ToString() +
            ")");
      }
      return Status::OutOfMemory(
          "buffer pool: all " + std::to_string(capacity_pages_) +
          " frames pinned or latched");
    }
    Frame& frame = frames_[victim];
    frame.io_pending = true;
    if (frame.dirty) {
      // Write back with the map mutex dropped; the latch keeps the
      // frame (and its page-table mapping) stable, and a concurrent
      // fetch of this page waits on the latch, then re-misses after
      // the erase.
      const PageId victim_page = frame.page_id;
      lock.unlock();
      Status s = failpoint::InjectedStatus("bufferpool.evict");
      if (s.ok()) s = disk_->WritePage(victim_page, frame.data.get());
      lock.lock();
      if (!s.ok()) {
        // Keep the victim dirty and resident — its bytes are still
        // the only copy — clear the latch so waiters proceed, and try
        // the next candidate.
        ++stats_.writeback_failures;
        frame.io_pending = false;
        io_cv_.notify_all();
        failed_victims.insert(victim);
        last_error = s;
        continue;
      }
      frame.dirty = false;
    }
    page_table_.erase(frame.page_id);
    frame.page_id = kInvalidPageId;
    frame.prefetched = false;
    ++stats_.evictions;
    return victim;
  }
}

void BufferPool::ReleaseFrameLocked(int64_t idx) {
  frames_[idx].io_pending = false;
  io_cv_.notify_all();
}

Result<char*> BufferPool::FetchPage(PageId page_id,
                                    bool* prefetch_hit) {
  if (prefetch_hit != nullptr) *prefetch_hit = false;
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    auto it = page_table_.find(page_id);
    if (it != page_table_.end()) {
      Frame& frame = frames_[it->second];
      if (frame.io_pending) {
        // Mid-load by another thread, or mid-write-back as an eviction
        // victim. Wait for the latch and re-validate: the mapping may
        // have completed (hit) or vanished (miss).
        io_cv_.wait(lock);
        continue;
      }
      if (frame.prefetched) {
        // First pin of a prefetcher-loaded page: the overlap paid off.
        frame.prefetched = false;
        ++stats_.prefetch_useful;
        if (prefetch_hit != nullptr) *prefetch_hit = true;
      }
      ++frame.pin_count;
      frame.last_used = ++clock_;
      ++stats_.hits;
      return frame.data.get();
    }
    RELSERVE_ASSIGN_OR_RETURN(int64_t idx, ReserveFrame(lock));
    // ReserveFrame may have dropped the lock for a write-back; another
    // thread could have loaded our page meanwhile. Counting the miss
    // only after this check keeps hits+misses == fetches exact.
    if (page_table_.find(page_id) != page_table_.end()) {
      ReleaseFrameLocked(idx);
      continue;
    }
    Frame& frame = frames_[idx];
    ++stats_.misses;
    frame.page_id = page_id;
    frame.pin_count = 1;
    frame.dirty = false;
    frame.prefetched = false;
    frame.last_used = ++clock_;
    page_table_[page_id] = idx;
    // Load outside the mutex: concurrent fetches of other pages
    // proceed, and fetches of this page wait on the latch.
    lock.unlock();
    Status s = disk_->ReadPage(page_id, frame.data.get());
    lock.lock();
    frame.io_pending = false;
    io_cv_.notify_all();
    if (!s.ok()) {
      page_table_.erase(page_id);
      frame.page_id = kInvalidPageId;
      frame.pin_count = 0;
      return s;
    }
    return frame.data.get();
  }
}

Result<char*> BufferPool::NewPage(PageId* out_id) {
  std::unique_lock<std::mutex> lock(mu_);
  RELSERVE_ASSIGN_OR_RETURN(int64_t idx, ReserveFrame(lock));
  const PageId page_id = disk_->AllocatePage();
  // A recycled id may still have a stale resident copy: a prefetch
  // that raced the page's DeletePage and loaded it after the free.
  // Purge the stale mapping so this frame becomes the sole owner.
  while (true) {
    auto stale = page_table_.find(page_id);
    if (stale == page_table_.end()) break;
    Frame& old = frames_[stale->second];
    if (old.io_pending) {
      io_cv_.wait(lock);
      continue;
    }
    old.page_id = kInvalidPageId;
    old.dirty = false;
    old.prefetched = false;
    page_table_.erase(stale);
  }
  Frame& frame = frames_[idx];
  frame.page_id = page_id;
  frame.pin_count = 1;
  frame.dirty = true;  // must reach disk even if never rewritten
  frame.prefetched = false;
  frame.last_used = ++clock_;
  page_table_[page_id] = idx;
  lock.unlock();
  std::memset(frame.data.get(), 0, kPageSize);
  lock.lock();
  frame.io_pending = false;
  io_cv_.notify_all();
  *out_id = page_id;
  return frame.data.get();
}

Status BufferPool::UnpinPage(PageId page_id, bool dirty) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = page_table_.find(page_id);
  if (it == page_table_.end()) {
    return Status::NotFound("unpin of non-resident page " +
                            std::to_string(page_id));
  }
  Frame& frame = frames_[it->second];
  if (frame.pin_count <= 0) {
    return Status::Internal("unpin of unpinned page " +
                            std::to_string(page_id));
  }
  --frame.pin_count;
  frame.dirty = frame.dirty || dirty;
  return Status::OK();
}

Status BufferPool::FlushAll() {
  std::unique_lock<std::mutex> lock(mu_);
  for (int64_t i = 0; i < capacity_pages_; ++i) {
    while (frames_[i].io_pending) io_cv_.wait(lock);
    Frame& frame = frames_[i];
    if (frame.page_id == kInvalidPageId || !frame.dirty) continue;
    frame.io_pending = true;
    const PageId page_id = frame.page_id;
    lock.unlock();
    Status s = disk_->WritePage(page_id, frame.data.get());
    lock.lock();
    frame.io_pending = false;
    io_cv_.notify_all();
    RELSERVE_RETURN_NOT_OK(s);
    frame.dirty = false;
  }
  return Status::OK();
}

Status BufferPool::DeletePage(PageId page_id) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    // Cancel any queued-but-not-started prefetch of this page so the
    // prefetcher cannot resurrect it after the free.
    if (prefetch_queued_.erase(page_id) > 0) {
      for (auto it = prefetch_queue_.begin();
           it != prefetch_queue_.end(); ++it) {
        if (*it == page_id) {
          prefetch_queue_.erase(it);
          break;
        }
      }
      ++stats_.prefetches_completed;  // issued but never loaded
    }
    while (true) {
      auto it = page_table_.find(page_id);
      if (it == page_table_.end()) break;
      Frame& frame = frames_[it->second];
      if (frame.io_pending) {
        io_cv_.wait(lock);
        continue;
      }
      if (frame.pin_count > 0) {
        return Status::Internal("delete of pinned page " +
                                std::to_string(page_id));
      }
      frame.page_id = kInvalidPageId;
      frame.dirty = false;
      frame.prefetched = false;
      page_table_.erase(it);
      break;
    }
  }
  disk_->FreePage(page_id);
  return Status::OK();
}

bool BufferPool::Prefetch(PageId page_id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (prefetch_stop_ || page_id == kInvalidPageId) return false;
  if (page_table_.find(page_id) != page_table_.end()) {
    return false;  // already resident: no-op
  }
  if (prefetch_queued_.count(page_id) > 0) return false;  // queued
  if (prefetch_queue_.size() >= kMaxQueuedPrefetches) {
    return false;  // shed: the scan will fault it in normally
  }
  EnsurePrefetcherLocked();
  prefetch_queue_.push_back(page_id);
  prefetch_queued_.insert(page_id);
  ++stats_.prefetches_issued;
  prefetch_cv_.notify_one();
  return true;
}

void BufferPool::EnsurePrefetcherLocked() {
  if (!prefetcher_.joinable()) {
    prefetcher_ = std::thread([this] { PrefetchLoop(); });
  }
}

void BufferPool::PrefetchLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    prefetch_cv_.wait(lock, [this] {
      return prefetch_stop_ || !prefetch_queue_.empty();
    });
    if (prefetch_stop_) {
      // Account for anything still queued so issued == completed at
      // quiescence even across shutdown.
      stats_.prefetches_completed +=
          static_cast<int64_t>(prefetch_queue_.size());
      prefetch_queue_.clear();
      prefetch_queued_.clear();
      return;
    }
    const PageId page_id = prefetch_queue_.front();
    prefetch_queue_.pop_front();
    prefetch_queued_.erase(page_id);
    if (page_table_.find(page_id) != page_table_.end()) {
      ++stats_.prefetches_completed;  // became resident meanwhile
      continue;
    }
    auto idx = ReserveFrame(lock);
    if (!idx.ok()) {
      // Every frame pinned or latched: drop the prefetch rather than
      // fight the foreground for capacity.
      ++stats_.prefetches_completed;
      continue;
    }
    // ReserveFrame may have dropped the lock for a victim write-back;
    // re-validate before claiming the mapping.
    if (page_table_.find(page_id) != page_table_.end()) {
      ReleaseFrameLocked(*idx);
      ++stats_.prefetches_completed;
      continue;
    }
    Frame& frame = frames_[*idx];
    frame.page_id = page_id;
    frame.pin_count = 0;  // resident but unpinned: evictable
    frame.dirty = false;
    frame.last_used = ++clock_;
    page_table_[page_id] = *idx;
    lock.unlock();
    Status s = disk_->ReadPage(page_id, frame.data.get());
    lock.lock();
    frame.io_pending = false;
    io_cv_.notify_all();
    if (s.ok()) {
      frame.prefetched = true;
    } else {
      // Dropped, never fatal: the foreground fetch will perform (and
      // surface) the read itself. Counted so chaos runs can assert
      // the prefetcher absorbed injected faults without dying.
      ++stats_.prefetch_failed;
      page_table_.erase(page_id);
      frame.page_id = kInvalidPageId;
      frame.prefetched = false;
    }
    ++stats_.prefetches_completed;
  }
}

BufferPoolStats BufferPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace relserve
