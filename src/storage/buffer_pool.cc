#include "storage/buffer_pool.h"

#include <cstring>
#include <limits>

#include "common/logging.h"

namespace relserve {

std::string BufferPoolStats::ToString() const {
  return "hits=" + std::to_string(hits) +
         " misses=" + std::to_string(misses) +
         " evictions=" + std::to_string(evictions);
}

BufferPool::BufferPool(DiskManager* disk, int64_t capacity_pages)
    : disk_(disk), capacity_pages_(capacity_pages) {
  RELSERVE_CHECK(capacity_pages >= 1);
  frames_.resize(capacity_pages);
}

Result<int64_t> BufferPool::GetFreeFrameLocked() {
  // First preference: a frame never used.
  for (int64_t i = 0; i < capacity_pages_; ++i) {
    if (frames_[i].page_id == kInvalidPageId) {
      if (frames_[i].data == nullptr) {
        frames_[i].data = std::make_unique<char[]>(kPageSize);
      }
      return i;
    }
  }
  // Otherwise evict the least-recently-used unpinned frame.
  int64_t victim = -1;
  uint64_t oldest = std::numeric_limits<uint64_t>::max();
  for (int64_t i = 0; i < capacity_pages_; ++i) {
    if (frames_[i].pin_count == 0 && frames_[i].last_used < oldest) {
      oldest = frames_[i].last_used;
      victim = i;
    }
  }
  if (victim < 0) {
    return Status::OutOfMemory(
        "buffer pool: all " + std::to_string(capacity_pages_) +
        " frames pinned");
  }
  Frame& frame = frames_[victim];
  if (frame.dirty) {
    RELSERVE_RETURN_NOT_OK(disk_->WritePage(frame.page_id, frame.data.get()));
    frame.dirty = false;
  }
  page_table_.erase(frame.page_id);
  frame.page_id = kInvalidPageId;
  ++stats_.evictions;
  return victim;
}

Result<char*> BufferPool::FetchPage(PageId page_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = page_table_.find(page_id);
  if (it != page_table_.end()) {
    Frame& frame = frames_[it->second];
    ++frame.pin_count;
    frame.last_used = ++clock_;
    ++stats_.hits;
    return frame.data.get();
  }
  ++stats_.misses;
  RELSERVE_ASSIGN_OR_RETURN(int64_t idx, GetFreeFrameLocked());
  Frame& frame = frames_[idx];
  RELSERVE_RETURN_NOT_OK(disk_->ReadPage(page_id, frame.data.get()));
  frame.page_id = page_id;
  frame.pin_count = 1;
  frame.dirty = false;
  frame.last_used = ++clock_;
  page_table_[page_id] = idx;
  return frame.data.get();
}

Result<char*> BufferPool::NewPage(PageId* out_id) {
  std::lock_guard<std::mutex> lock(mu_);
  RELSERVE_ASSIGN_OR_RETURN(int64_t idx, GetFreeFrameLocked());
  const PageId page_id = disk_->AllocatePage();
  Frame& frame = frames_[idx];
  std::memset(frame.data.get(), 0, kPageSize);
  frame.page_id = page_id;
  frame.pin_count = 1;
  frame.dirty = true;  // must reach disk even if never rewritten
  frame.last_used = ++clock_;
  page_table_[page_id] = idx;
  *out_id = page_id;
  return frame.data.get();
}

Status BufferPool::UnpinPage(PageId page_id, bool dirty) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = page_table_.find(page_id);
  if (it == page_table_.end()) {
    return Status::NotFound("unpin of non-resident page " +
                            std::to_string(page_id));
  }
  Frame& frame = frames_[it->second];
  if (frame.pin_count <= 0) {
    return Status::Internal("unpin of unpinned page " +
                            std::to_string(page_id));
  }
  --frame.pin_count;
  frame.dirty = frame.dirty || dirty;
  return Status::OK();
}

Status BufferPool::FlushAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (Frame& frame : frames_) {
    if (frame.page_id != kInvalidPageId && frame.dirty) {
      RELSERVE_RETURN_NOT_OK(
          disk_->WritePage(frame.page_id, frame.data.get()));
      frame.dirty = false;
    }
  }
  return Status::OK();
}

Status BufferPool::DeletePage(PageId page_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = page_table_.find(page_id);
  if (it != page_table_.end()) {
    Frame& frame = frames_[it->second];
    if (frame.pin_count > 0) {
      return Status::Internal("delete of pinned page " +
                              std::to_string(page_id));
    }
    frame.page_id = kInvalidPageId;
    frame.dirty = false;
    page_table_.erase(it);
  }
  disk_->FreePage(page_id);
  return Status::OK();
}

BufferPoolStats BufferPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace relserve
