#include "storage/disk_manager.h"

#include <unistd.h>

#include <cstdlib>
#include <cstring>

#include "common/logging.h"

namespace relserve {

DiskManager::DiskManager(std::string path) : path_(std::move(path)) {
  if (path_.empty()) {
    char templ[] = "/tmp/relserve_spill_XXXXXX";
    const int fd = ::mkstemp(templ);
    RELSERVE_CHECK(fd >= 0) << "mkstemp failed";
    path_ = templ;
    unlink_on_close_ = true;
    file_ = ::fdopen(fd, "w+b");
  } else {
    file_ = std::fopen(path_.c_str(), "w+b");
  }
  RELSERVE_CHECK(file_ != nullptr)
      << "failed to open spill file " << path_;
}

DiskManager::~DiskManager() {
  if (file_ != nullptr) std::fclose(file_);
  if (unlink_on_close_) ::unlink(path_.c_str());
}

PageId DiskManager::AllocatePage() {
  {
    std::lock_guard<std::mutex> lock(free_mu_);
    if (!free_list_.empty()) {
      const PageId id = free_list_.back();
      free_list_.pop_back();
      return id;
    }
  }
  return next_page_id_.fetch_add(1, std::memory_order_relaxed);
}

void DiskManager::FreePage(PageId page_id) {
  std::lock_guard<std::mutex> lock(free_mu_);
  free_list_.push_back(page_id);
}

int64_t DiskManager::num_free() const {
  std::lock_guard<std::mutex> lock(free_mu_);
  return static_cast<int64_t>(free_list_.size());
}

Status DiskManager::ReadPage(PageId page_id, char* out) {
  std::lock_guard<std::mutex> lock(io_mu_);
  if (std::fseek(file_, page_id * kPageSize, SEEK_SET) != 0) {
    return Status::IOError("seek to page " + std::to_string(page_id));
  }
  const size_t n = std::fread(out, 1, kPageSize, file_);
  if (n < static_cast<size_t>(kPageSize)) {
    // Pages written short (or never written) read back zero-padded;
    // this mirrors sparse-file semantics and keeps allocation lazy.
    std::memset(out + n, 0, kPageSize - n);
    std::clearerr(file_);
  }
  num_reads_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status DiskManager::WritePage(PageId page_id, const char* data) {
  // Injected failures decrement even when concurrent; slight
  // over-failing under races is fine for a test hook.
  int pending = inject_write_failures_.load(std::memory_order_relaxed);
  while (pending > 0) {
    if (inject_write_failures_.compare_exchange_weak(
            pending, pending - 1, std::memory_order_relaxed)) {
      return Status::IOError("injected write failure for page " +
                             std::to_string(page_id));
    }
  }
  std::lock_guard<std::mutex> lock(io_mu_);
  if (std::fseek(file_, page_id * kPageSize, SEEK_SET) != 0) {
    return Status::IOError("seek to page " + std::to_string(page_id));
  }
  if (std::fwrite(data, 1, kPageSize, file_) !=
      static_cast<size_t>(kPageSize)) {
    return Status::IOError("short write to page " +
                           std::to_string(page_id));
  }
  num_writes_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

}  // namespace relserve
