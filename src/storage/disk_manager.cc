#include "storage/disk_manager.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "common/logging.h"

namespace relserve {

DiskManager::DiskManager(std::string path) : path_(std::move(path)) {
  if (path_.empty()) {
    char templ[] = "/tmp/relserve_spill_XXXXXX";
    fd_ = ::mkstemp(templ);
    RELSERVE_CHECK(fd_ >= 0) << "mkstemp failed";
    path_ = templ;
    unlink_on_close_ = true;
  } else {
    fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  }
  RELSERVE_CHECK(fd_ >= 0) << "failed to open spill file " << path_;
}

DiskManager::~DiskManager() {
  if (fd_ >= 0) ::close(fd_);
  if (unlink_on_close_) ::unlink(path_.c_str());
}

PageId DiskManager::AllocatePage() {
  {
    std::lock_guard<std::mutex> lock(free_mu_);
    if (!free_list_.empty()) {
      const PageId id = free_list_.back();
      free_list_.pop_back();
      return id;
    }
  }
  return next_page_id_.fetch_add(1, std::memory_order_relaxed);
}

void DiskManager::FreePage(PageId page_id) {
  std::lock_guard<std::mutex> lock(free_mu_);
  free_list_.push_back(page_id);
}

int64_t DiskManager::num_free() const {
  std::lock_guard<std::mutex> lock(free_mu_);
  return static_cast<int64_t>(free_list_.size());
}

// Positioned I/O (pread/pwrite) carries its own offset, so page reads
// and write-backs issued by concurrent buffer-pool threads overlap in
// the kernel instead of serializing behind a seek mutex.

Status DiskManager::ReadPage(PageId page_id, char* out) {
  int64_t done = 0;
  while (done < kPageSize) {
    const ssize_t n = ::pread(fd_, out + done, kPageSize - done,
                              page_id * kPageSize + done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("read of page " + std::to_string(page_id));
    }
    if (n == 0) break;  // past EOF
    done += n;
  }
  if (done < kPageSize) {
    // Pages written short (or never written) read back zero-padded;
    // this mirrors sparse-file semantics and keeps allocation lazy.
    std::memset(out + done, 0, kPageSize - done);
  }
  num_reads_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status DiskManager::WritePage(PageId page_id, const char* data) {
  // Injected failures decrement even when concurrent; slight
  // over-failing under races is fine for a test hook.
  int pending = inject_write_failures_.load(std::memory_order_relaxed);
  while (pending > 0) {
    if (inject_write_failures_.compare_exchange_weak(
            pending, pending - 1, std::memory_order_relaxed)) {
      return Status::IOError("injected write failure for page " +
                             std::to_string(page_id));
    }
  }
  int64_t done = 0;
  while (done < kPageSize) {
    const ssize_t n = ::pwrite(fd_, data + done, kPageSize - done,
                               page_id * kPageSize + done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("write to page " + std::to_string(page_id));
    }
    done += n;
  }
  num_writes_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

}  // namespace relserve
