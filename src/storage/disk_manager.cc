#include "storage/disk_manager.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "common/crc32c.h"
#include "common/failpoint.h"
#include "common/io_util.h"

namespace relserve {

namespace {

struct PageHeader {
  uint32_t magic = 0;
  uint32_t crc = 0;
  uint64_t page_id = 0;
};
static_assert(sizeof(PageHeader) == kPageHeaderSize,
              "on-disk header layout must match kPageHeaderSize");

bool HeaderIsHole(const PageHeader& header) {
  return header.magic == 0 && header.crc == 0 && header.page_id == 0;
}

// The EINTR-resume / short-transfer-resume loops live in
// common/io_util.{h,cc} and are shared with the socket layer; the
// "<site>.eintr" / "<site>.short" failpoints drive the resume
// branches deterministically in tests.

}  // namespace

DiskManagerOptions::DiskManagerOptions() : checksum_pages(true) {
  const char* env = std::getenv("RELSERVE_PAGE_CHECKSUMS");
  if (env != nullptr &&
      (std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0)) {
    checksum_pages = false;
  }
}

Result<std::unique_ptr<DiskManager>> DiskManager::Open(
    std::string path, DiskManagerOptions options) {
  auto manager = std::make_unique<DiskManager>(std::move(path), options);
  RELSERVE_RETURN_NOT_OK(manager->status());
  return manager;
}

DiskManager::DiskManager(std::string path, DiskManagerOptions options)
    : options_(options), path_(std::move(path)) {
  Status injected = failpoint::InjectedStatus("disk.open");
  if (!injected.ok()) {
    open_status_ = injected;
    return;
  }
  if (path_.empty()) {
    char templ[] = "/tmp/relserve_spill_XXXXXX";
    fd_ = ::mkstemp(templ);
    if (fd_ < 0) {
      open_status_ = Status::IOError(
          std::string("mkstemp failed: ") + std::strerror(errno));
      return;
    }
    path_ = templ;
    unlink_on_close_ = true;
  } else {
    fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
    if (fd_ < 0) {
      open_status_ = Status::IOError("failed to open spill file " +
                                     path_ + ": " +
                                     std::strerror(errno));
      return;
    }
  }
}

DiskManager::~DiskManager() {
  if (fd_ >= 0) ::close(fd_);
  if (unlink_on_close_) ::unlink(path_.c_str());
}

Status DiskManager::status() const { return open_status_; }

PageId DiskManager::AllocatePage() {
  {
    std::lock_guard<std::mutex> lock(free_mu_);
    if (!free_list_.empty()) {
      const PageId id = free_list_.back();
      free_list_.pop_back();
      return id;
    }
  }
  return next_page_id_.fetch_add(1, std::memory_order_relaxed);
}

void DiskManager::FreePage(PageId page_id) {
  std::lock_guard<std::mutex> lock(free_mu_);
  free_list_.push_back(page_id);
}

int64_t DiskManager::num_free() const {
  std::lock_guard<std::mutex> lock(free_mu_);
  return static_cast<int64_t>(free_list_.size());
}

int64_t DiskManager::num_quarantined() const {
  std::lock_guard<std::mutex> lock(quarantine_mu_);
  return static_cast<int64_t>(quarantined_.size());
}

bool DiskManager::IsQuarantined(PageId page_id) const {
  std::lock_guard<std::mutex> lock(quarantine_mu_);
  return quarantined_.count(page_id) > 0;
}

// Positioned I/O (pread/pwrite) carries its own offset, so page reads
// and write-backs issued by concurrent buffer-pool threads overlap in
// the kernel instead of serializing behind a seek mutex.

Status DiskManager::ReadAttempt(PageId page_id, char* out) {
  // One failpoint draw per attempt: error preempts the transfer,
  // delay stalls it, bitflip lands on the payload after it — modeling
  // bus/DMA corruption that only the checksum can catch. Each retry
  // re-draws, so a `once` bitflip heals on re-read (transient) while
  // a higher-limit one survives into quarantine (persistent).
  failpoint::Eval fault;
  if (failpoint::AnyActive()) {
    fault = failpoint::Evaluate("disk.read");
    if (fault.fired && fault.action == failpoint::Action::kError) {
      return Status(fault.error_code,
                    "injected fault at disk.read for page " +
                        std::to_string(page_id));
    }
  }

  const int64_t slot = page_id * kPageSlotSize;
  char header_bytes[kPageHeaderSize];
  int64_t header_done = 0;
  RELSERVE_RETURN_NOT_OK(io::PreadFull(fd_, header_bytes, kPageHeaderSize,
                                  slot, "disk.read.eintr",
                                  "disk.read.short", &header_done));
  PageHeader header;
  std::memset(&header, 0, sizeof(header));
  std::memcpy(&header, header_bytes,
              static_cast<size_t>(header_done));

  if (header_done == 0 || HeaderIsHole(header)) {
    // Never-written page (or a hole in the sparse file): reads back
    // zero-filled, keeping allocation lazy. No on-disk bytes exist to
    // corrupt, so injected bitflips do not apply here.
    std::memset(out, 0, kPageSize);
    return Status::OK();
  }
  if (header_done < kPageHeaderSize) {
    return Status::DataLoss("partial page header for page " +
                            std::to_string(page_id));
  }

  int64_t payload_done = 0;
  RELSERVE_RETURN_NOT_OK(io::PreadFull(fd_, out, kPageSize,
                                  slot + kPageHeaderSize,
                                  "disk.read.eintr", "disk.read.short",
                                  &payload_done));
  if (payload_done < kPageSize) {
    // Pages written short (torn write at end-of-file) read back
    // zero-padded; the checksum decides whether that is damage.
    std::memset(out + payload_done, 0, kPageSize - payload_done);
  }

  failpoint::ApplyBitflip(fault, out, kPageSize);

  if (header.page_id != static_cast<uint64_t>(page_id)) {
    return Status::DataLoss(
        "misdirected page: slot " + std::to_string(page_id) +
        " carries header for page " + std::to_string(header.page_id));
  }
  if (header.magic == kPageMagicCrc) {
    if (options_.checksum_pages) {
      const uint32_t actual = crc32c::Value(out, kPageSize);
      if (actual != header.crc) {
        return Status::DataLoss("checksum mismatch on page " +
                                std::to_string(page_id));
      }
    }
    return Status::OK();
  }
  if (header.magic == kPageMagicNoCrc) {
    return Status::OK();  // written with checksums off: nothing to verify
  }
  return Status::DataLoss("corrupt page header magic on page " +
                          std::to_string(page_id));
}

Status DiskManager::ReadPage(PageId page_id, char* out) {
  RELSERVE_RETURN_NOT_OK(open_status_);
  {
    std::lock_guard<std::mutex> lock(quarantine_mu_);
    if (quarantined_.count(page_id) > 0) {
      std::memset(out, 0, kPageSize);  // never leak stale buffer bytes
      return Status::DataLoss("page " + std::to_string(page_id) +
                              " is quarantined");
    }
  }
  Status last = Status::OK();
  for (int attempt = 0;
       attempt <= options_.checksum_read_retries; ++attempt) {
    if (attempt > 0) {
      num_read_retries_.fetch_add(1, std::memory_order_relaxed);
    }
    last = ReadAttempt(page_id, out);
    if (last.ok()) {
      num_reads_.fetch_add(1, std::memory_order_relaxed);
      return last;
    }
    if (!last.IsDataLoss()) return last;  // I/O errors do not re-read
    num_checksum_failures_.fetch_add(1, std::memory_order_relaxed);
  }
  // Persistent corruption: quarantine so later readers fail fast and
  // nothing downstream ever consumes the garbage. A successful
  // rewrite of the page lifts the quarantine.
  {
    std::lock_guard<std::mutex> lock(quarantine_mu_);
    quarantined_.insert(page_id);
  }
  // Never leak the corrupt bytes, even to callers that ignore status.
  std::memset(out, 0, kPageSize);
  return last;
}

Status DiskManager::WritePage(PageId page_id, const char* data) {
  RELSERVE_RETURN_NOT_OK(open_status_);

  // The header's checksum is computed over the caller's payload;
  // injected corruption (bitflip/torn) is applied to a scratch copy
  // *after*, so injected damage reaches the disk silently — exactly
  // what a real misbehaving device does — and only the read-side
  // verification can catch it.
  const char* payload = data;
  int64_t payload_len = kPageSize;
  std::unique_ptr<char[]> scratch;
  if (failpoint::AnyActive()) {
    scratch = std::make_unique<char[]>(kPageSize);
    std::memcpy(scratch.get(), data, kPageSize);
    int64_t io_len = kPageSize;
    RELSERVE_RETURN_NOT_OK(failpoint::InjectedIo(
        "disk.write", scratch.get(), kPageSize, &io_len));
    payload = scratch.get();
    payload_len = io_len;
  }

  PageHeader header;
  header.magic =
      options_.checksum_pages ? kPageMagicCrc : kPageMagicNoCrc;
  header.crc =
      options_.checksum_pages ? crc32c::Value(data, kPageSize) : 0;
  header.page_id = static_cast<uint64_t>(page_id);

  const int64_t slot = page_id * kPageSlotSize;
  char header_bytes[kPageHeaderSize];
  std::memcpy(header_bytes, &header, kPageHeaderSize);
  RELSERVE_RETURN_NOT_OK(io::PwriteFull(fd_, header_bytes, kPageHeaderSize,
                                   slot, "disk.write.eintr",
                                   "disk.write.short"));
  RELSERVE_RETURN_NOT_OK(io::PwriteFull(fd_, payload, payload_len,
                                   slot + kPageHeaderSize,
                                   "disk.write.eintr",
                                   "disk.write.short"));
  num_writes_.fetch_add(1, std::memory_order_relaxed);
  // Fresh bytes are on disk (even torn ones — the checksum covers
  // detection); any earlier quarantine no longer applies.
  {
    std::lock_guard<std::mutex> lock(quarantine_mu_);
    quarantined_.erase(page_id);
  }
  return Status::OK();
}

}  // namespace relserve
