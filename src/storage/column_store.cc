#include "storage/column_store.h"

#include <algorithm>
#include <cstring>

#include "common/failpoint.h"
#include "storage/page.h"

namespace relserve {

namespace {

template <typename T>
void AppendPod(std::string* out, T v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
bool ReadPod(const char*& cursor, const char* end, T* v) {
  if (cursor + sizeof(T) > end) return false;
  std::memcpy(v, cursor, sizeof(T));
  cursor += sizeof(T);
  return true;
}

std::string EncodeChunk(const ColumnChunk& chunk) {
  std::string out;
  const int64_t rows = chunk.length;
  const uint8_t has_validity = chunk.has_nulls() ? 1 : 0;
  int64_t payload = 0;
  switch (chunk.type) {
    case ValueType::kInt64:
    case ValueType::kFloat64:
      payload = rows * 8;
      break;
    case ValueType::kString:
      payload = 8 + rows * 4;
      for (const std::string& s : chunk.str) {
        payload += static_cast<int64_t>(s.size());
      }
      break;
    case ValueType::kFloatVector:
      payload = 8 + rows * 4 +
                static_cast<int64_t>(chunk.vec_data.size()) * 4;
      break;
  }
  out.reserve(1 + 8 + 1 +
              (has_validity ? static_cast<int64_t>((rows + 7) / 8) : 0) +
              payload);
  AppendPod<uint8_t>(&out, static_cast<uint8_t>(chunk.type));
  AppendPod<int64_t>(&out, rows);
  AppendPod<uint8_t>(&out, has_validity);
  if (has_validity) {
    out.append(reinterpret_cast<const char*>(chunk.validity.data()),
               (rows + 7) / 8);
  }
  switch (chunk.type) {
    case ValueType::kInt64:
      out.append(reinterpret_cast<const char*>(chunk.i64.data()),
                 rows * 8);
      break;
    case ValueType::kFloat64:
      out.append(reinterpret_cast<const char*>(chunk.f64.data()),
                 rows * 8);
      break;
    case ValueType::kString: {
      int64_t total = 0;
      for (const std::string& s : chunk.str) {
        total += static_cast<int64_t>(s.size());
      }
      AppendPod<int64_t>(&out, total);
      for (const std::string& s : chunk.str) {
        AppendPod<uint32_t>(&out, static_cast<uint32_t>(s.size()));
      }
      for (const std::string& s : chunk.str) out.append(s);
      break;
    }
    case ValueType::kFloatVector: {
      AppendPod<int64_t>(&out,
                         static_cast<int64_t>(chunk.vec_data.size()));
      for (int64_t r = 0; r < rows; ++r) {
        AppendPod<uint32_t>(
            &out, static_cast<uint32_t>(chunk.vec_offsets[r + 1] -
                                        chunk.vec_offsets[r]));
      }
      out.append(
          reinterpret_cast<const char*>(chunk.vec_data.data()),
          static_cast<int64_t>(chunk.vec_data.size()) * 4);
      break;
    }
  }
  return out;
}

Result<ColumnChunk> DecodeChunk(const std::string& encoded) {
  const char* cursor = encoded.data();
  const char* end = encoded.data() + encoded.size();
  uint8_t type_tag = 0;
  int64_t rows = 0;
  uint8_t has_validity = 0;
  if (!ReadPod(cursor, end, &type_tag) || !ReadPod(cursor, end, &rows) ||
      !ReadPod(cursor, end, &has_validity) || rows < 0 || type_tag > 3) {
    return Status::DataLoss("column stream: corrupt header");
  }
  ColumnChunk chunk(static_cast<ValueType>(type_tag));
  chunk.length = rows;
  if (has_validity) {
    const int64_t nbytes = (rows + 7) / 8;
    if (cursor + nbytes > end) {
      return Status::DataLoss("column stream: truncated bitmap");
    }
    chunk.validity.assign(
        reinterpret_cast<const uint8_t*>(cursor),
        reinterpret_cast<const uint8_t*>(cursor) + nbytes);
    cursor += nbytes;
  }
  switch (chunk.type) {
    case ValueType::kInt64: {
      if (cursor + rows * 8 > end) {
        return Status::DataLoss("column stream: truncated int64 payload");
      }
      chunk.i64.resize(rows);
      if (rows > 0) std::memcpy(chunk.i64.data(), cursor, rows * 8);
      cursor += rows * 8;
      break;
    }
    case ValueType::kFloat64: {
      if (cursor + rows * 8 > end) {
        return Status::DataLoss(
            "column stream: truncated float64 payload");
      }
      chunk.f64.resize(rows);
      if (rows > 0) std::memcpy(chunk.f64.data(), cursor, rows * 8);
      cursor += rows * 8;
      break;
    }
    case ValueType::kString: {
      int64_t total = 0;
      if (!ReadPod(cursor, end, &total) || total < 0 ||
          cursor + rows * 4 + total > end) {
        return Status::DataLoss(
            "column stream: truncated string payload");
      }
      std::vector<uint32_t> lens(rows);
      if (rows > 0) std::memcpy(lens.data(), cursor, rows * 4);
      cursor += rows * 4;
      chunk.str.reserve(rows);
      int64_t consumed = 0;
      for (int64_t r = 0; r < rows; ++r) {
        consumed += lens[r];
        if (consumed > total) {
          return Status::DataLoss(
              "column stream: string lengths exceed payload");
        }
        chunk.str.emplace_back(cursor, lens[r]);
        cursor += lens[r];
      }
      break;
    }
    case ValueType::kFloatVector: {
      int64_t total = 0;
      if (!ReadPod(cursor, end, &total) || total < 0 ||
          cursor + rows * 4 + total * 4 > end) {
        return Status::DataLoss(
            "column stream: truncated vector payload");
      }
      std::vector<uint32_t> lens(rows);
      if (rows > 0) std::memcpy(lens.data(), cursor, rows * 4);
      cursor += rows * 4;
      chunk.vec_offsets.assign(1, 0);
      chunk.vec_offsets.reserve(rows + 1);
      int64_t consumed = 0;
      for (int64_t r = 0; r < rows; ++r) {
        consumed += lens[r];
        if (consumed > total) {
          return Status::DataLoss(
              "column stream: vector lengths exceed payload");
        }
        chunk.vec_offsets.push_back(consumed);
      }
      chunk.vec_data.resize(total);
      if (total > 0) std::memcpy(chunk.vec_data.data(), cursor, total * 4);
      cursor += total * 4;
      break;
    }
  }
  return chunk;
}

}  // namespace

ColumnarTable::ColumnarTable(BufferPool* pool, Schema schema,
                             int64_t fragment_rows)
    : pool_(pool),
      schema_(std::move(schema)),
      fragment_rows_(fragment_rows > 0
                         ? fragment_rows
                         : kDefaultFragmentRows),
      active_(schema_) {}

Status ColumnarTable::AppendRow(const Row& row) {
  if (row.num_values() != schema_.num_columns()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.num_values()) +
        " does not match schema of " +
        std::to_string(schema_.num_columns()));
  }
  for (int c = 0; c < schema_.num_columns(); ++c) {
    if (row.value(c).type() != schema_.column(c).type) {
      return Status::InvalidArgument(
          "column '" + schema_.column(c).name + "' expects " +
          ValueTypeName(schema_.column(c).type) + ", got " +
          ValueTypeName(row.value(c).type()));
    }
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  active_.AppendRow(row);
  num_rows_.fetch_add(1, std::memory_order_release);
  if (active_.num_rows >= fragment_rows_) {
    return SealActiveLocked(/*allow_empty=*/false);
  }
  return Status::OK();
}

Status ColumnarTable::AppendNullRow() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  for (ColumnChunk& c : active_.columns) c.AppendNull();
  ++active_.num_rows;
  num_rows_.fetch_add(1, std::memory_order_release);
  if (active_.num_rows >= fragment_rows_) {
    return SealActiveLocked(/*allow_empty=*/false);
  }
  return Status::OK();
}

Status ColumnarTable::AppendBatch(const ColumnBatch& batch) {
  if (static_cast<int>(batch.columns.size()) !=
      schema_.num_columns()) {
    return Status::InvalidArgument("batch arity mismatch");
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  for (int64_t r = 0; r < batch.num_rows; ++r) {
    for (int c = 0; c < schema_.num_columns(); ++c) {
      active_.columns[c].AppendFrom(batch.columns[c], r);
    }
    ++active_.num_rows;
    num_rows_.fetch_add(1, std::memory_order_release);
    if (active_.num_rows >= fragment_rows_) {
      RELSERVE_RETURN_NOT_OK(SealActiveLocked(/*allow_empty=*/false));
    }
  }
  return Status::OK();
}

Status ColumnarTable::WriteStream(const std::string& encoded,
                                  ColumnStream* out) {
  out->bytes = static_cast<int64_t>(encoded.size());
  const char* src = encoded.data();
  int64_t remaining = out->bytes;
  // Zero-length streams still occupy one page so every column of a
  // sealed fragment has a stream to read back.
  do {
    PageId page_id = kInvalidPageId;
    RELSERVE_ASSIGN_OR_RETURN(char* page, pool_->NewPage(&page_id));
    const int64_t chunk = std::min(remaining, kPageSize);
    if (chunk > 0) std::memcpy(page, src, chunk);
    RELSERVE_RETURN_NOT_OK(pool_->UnpinPage(page_id, /*dirty=*/true));
    out->pages.push_back(page_id);
    src += chunk;
    remaining -= chunk;
  } while (remaining > 0);
  return Status::OK();
}

Status ColumnarTable::ReadStream(const ColumnStream& stream,
                                 std::string* out) const {
  out->resize(stream.bytes);
  char* dst = out->data();
  int64_t remaining = stream.bytes;
  for (const PageId page_id : stream.pages) {
    RELSERVE_ASSIGN_OR_RETURN(char* page, pool_->FetchPage(page_id));
    const int64_t chunk = std::min(remaining, kPageSize);
    std::memcpy(dst, page, chunk);
    RELSERVE_RETURN_NOT_OK(pool_->UnpinPage(page_id, /*dirty=*/false));
    dst += chunk;
    remaining -= chunk;
  }
  if (remaining != 0) {
    return Status::DataLoss("column stream page list too short");
  }
  return Status::OK();
}

Status ColumnarTable::SealActiveFragment(bool allow_empty) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  return SealActiveLocked(allow_empty);
}

Status ColumnarTable::SealActiveLocked(bool allow_empty) {
  if (active_.num_rows == 0 && !allow_empty) return Status::OK();
  Fragment frag;
  frag.rows = active_.num_rows;
  frag.start = SealedRowsLocked();
  frag.columns.resize(schema_.num_columns());
  for (int c = 0; c < schema_.num_columns(); ++c) {
    const std::string encoded = EncodeChunk(active_.columns[c]);
    RELSERVE_RETURN_NOT_OK(WriteStream(encoded, &frag.columns[c]));
    sealed_bytes_.fetch_add(frag.columns[c].bytes,
                            std::memory_order_relaxed);
  }
  fragments_.push_back(std::move(frag));
  active_ = ColumnBatch(schema_);
  return Status::OK();
}

int64_t ColumnarTable::num_fragments() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return NumFragmentsLocked();
}

int64_t ColumnarTable::FragmentRowCount(int64_t f) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (f < static_cast<int64_t>(fragments_.size())) {
    return fragments_[f].rows;
  }
  return active_.num_rows;
}

int64_t ColumnarTable::FragmentStartRow(int64_t f) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (f < static_cast<int64_t>(fragments_.size())) {
    return fragments_[f].start;
  }
  return SealedRowsLocked();  // open tail starts after sealed rows
}

Result<ColumnBatch> ColumnarTable::ReadFragment(
    int64_t f, const std::vector<int>* columns) const {
  RELSERVE_RETURN_NOT_OK(failpoint::InjectedStatus("columnar.scan"));
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (f < 0 || f >= NumFragmentsLocked()) {
    return Status::InvalidArgument("fragment " + std::to_string(f) +
                                   " out of range");
  }
  std::vector<int> all;
  if (columns == nullptr) {
    all.resize(schema_.num_columns());
    for (int c = 0; c < schema_.num_columns(); ++c) all[c] = c;
    columns = &all;
  }
  ColumnBatch batch(schema_.Project(*columns));
  const bool tail = f >= static_cast<int64_t>(fragments_.size());
  for (size_t i = 0; i < columns->size(); ++i) {
    const int c = (*columns)[i];
    if (c < 0 || c >= schema_.num_columns()) {
      return Status::InvalidArgument("column index " +
                                     std::to_string(c) +
                                     " out of range");
    }
    if (tail) {
      batch.columns[i] = active_.columns[c];
    } else {
      std::string encoded;
      RELSERVE_RETURN_NOT_OK(
          ReadStream(fragments_[f].columns[c], &encoded));
      RELSERVE_ASSIGN_OR_RETURN(batch.columns[i],
                                DecodeChunk(encoded));
      if (batch.columns[i].type != schema_.column(c).type ||
          batch.columns[i].length != fragments_[f].rows) {
        return Status::DataLoss("column stream: decoded shape for '" +
                                schema_.column(c).name +
                                "' does not match fragment");
      }
    }
  }
  batch.num_rows = tail ? active_.num_rows : fragments_[f].rows;
  return batch;
}

}  // namespace relserve
