// Page constants shared by the disk manager and buffer pool.

#ifndef RELSERVE_STORAGE_PAGE_H_
#define RELSERVE_STORAGE_PAGE_H_

#include <cstdint>

namespace relserve {

using PageId = int64_t;
inline constexpr PageId kInvalidPageId = -1;

// 64 KiB pages: large enough that a tensor block of a few thousand
// floats spans a handful of pages, small enough that the buffer pool
// ablations (A3) show real eviction behaviour at laptop scale.
// kPageSize is the *payload* a buffer-pool frame holds; on disk each
// page occupies a slot of kPageHeaderSize + kPageSize so the checksum
// header travels with the data it protects (DESIGN.md "Fault model &
// recovery").
inline constexpr int64_t kPageSize = 64 * 1024;

// On-disk page header: {magic, crc32c(payload), page_id}. magic
// distinguishes checksummed pages, unchecksummed pages, and
// never-written holes (all-zero header); page_id catches misdirected
// I/O (a write landing at the wrong offset).
inline constexpr int64_t kPageHeaderSize = 16;
inline constexpr int64_t kPageSlotSize = kPageSize + kPageHeaderSize;

inline constexpr uint32_t kPageMagicCrc = 0x52535643;    // "RSVC"
inline constexpr uint32_t kPageMagicNoCrc = 0x52535630;  // "RSV0"

}  // namespace relserve

#endif  // RELSERVE_STORAGE_PAGE_H_
