// Page constants shared by the disk manager and buffer pool.

#ifndef RELSERVE_STORAGE_PAGE_H_
#define RELSERVE_STORAGE_PAGE_H_

#include <cstdint>

namespace relserve {

using PageId = int64_t;
inline constexpr PageId kInvalidPageId = -1;

// 64 KiB pages: large enough that a tensor block of a few thousand
// floats spans a handful of pages, small enough that the buffer pool
// ablations (A3) show real eviction behaviour at laptop scale.
inline constexpr int64_t kPageSize = 64 * 1024;

}  // namespace relserve

#endif  // RELSERVE_STORAGE_PAGE_H_
