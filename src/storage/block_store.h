// BlockStore: a tensor relation — the on-page home of TensorBlocks.
//
// This is the storage half of the relation-centric architecture: a
// large matrix is chunked (SplitMatrix / ExtractBlock) and each block's
// payload is laid out across buffer-pool pages. Reading a block back
// materializes just that block, charged to the caller's arena; the rest
// of the tensor stays on pages (resident or spilled). Block metadata
// (coordinates, shape, page list) is kept in memory — it is catalog
// data, tiny compared to payloads.

#ifndef RELSERVE_STORAGE_BLOCK_STORE_H_
#define RELSERVE_STORAGE_BLOCK_STORE_H_

#include <cstdint>
#include <mutex>
#include <vector>

#include "common/result.h"
#include "storage/buffer_pool.h"
#include "tensor/tensor_block.h"

namespace relserve {

class BlockStore {
 public:
  struct BlockEntry {
    int64_t row_block = 0;
    int64_t col_block = 0;
    int64_t rows = 0;
    int64_t cols = 0;
    std::vector<PageId> pages;

    int64_t ByteSize() const {
      return rows * cols * static_cast<int64_t>(sizeof(float));
    }
  };

  BlockStore(BufferPool* pool, BlockedShape geometry)
      : pool_(pool), geometry_(geometry) {}

  // Dropping a store recycles its pages back to the disk manager's
  // free list — intermediate activation relations are transient, and
  // without recycling every query would grow the spill file.
  ~BlockStore();

  BlockStore(const BlockStore&) = delete;
  BlockStore& operator=(const BlockStore&) = delete;
  BlockStore(BlockStore&& other) noexcept
      : pool_(other.pool_),
        geometry_(other.geometry_),
        entries_(std::move(other.entries_)) {
    other.entries_.clear();
  }

  // Writes one block's payload to fresh pages and records its entry.
  // Thread-safe against concurrent Put (ParallelFor morsels emit
  // output blocks concurrently); the entry order then follows
  // completion order, which is irrelevant to the relation's contents.
  // Do not interleave Put with entries()/Get/ToMatrix on the same
  // store.
  Status Put(const TensorBlock& block);

  // Chunks an in-memory matrix and stores every block. Uses O(block)
  // transient memory (charged to `scratch`, may be null).
  Status PutMatrix(const Tensor& m, MemoryTracker* scratch = nullptr);

  // Reads a stored block back into a Tensor charged to `tracker`.
  // `prefetch_hits`, when non-null, accumulates how many of the
  // block's pages were pinned off a prefetcher-loaded frame.
  Result<TensorBlock> Get(const BlockEntry& entry,
                          MemoryTracker* tracker = nullptr,
                          int64_t* prefetch_hits = nullptr) const;

  // Issues asynchronous loads for every page of `entry` so a
  // following Get overlaps its disk reads with whatever the caller
  // computes in between. Best effort; returns the number of page
  // prefetches actually scheduled (0 when fully resident).
  int64_t PrefetchEntry(const BlockEntry& entry) const;

  // Reassembles the full matrix (requires it to fit in `tracker`).
  Result<Tensor> ToMatrix(MemoryTracker* tracker = nullptr) const;

  const std::vector<BlockEntry>& entries() const { return entries_; }
  const BlockedShape& geometry() const { return geometry_; }
  BufferPool* pool() const { return pool_; }

  // Total payload bytes across all stored blocks.
  int64_t TotalBytes() const;

 private:
  BufferPool* pool_;
  BlockedShape geometry_;
  std::mutex entries_mu_;  // guards entries_ during concurrent Put
  std::vector<BlockEntry> entries_;
};

}  // namespace relserve

#endif  // RELSERVE_STORAGE_BLOCK_STORE_H_
