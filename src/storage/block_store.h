// BlockStore: a tensor relation — the on-page home of TensorBlocks.
//
// This is the storage half of the relation-centric architecture: a
// large matrix is chunked (SplitMatrix / ExtractBlock) and each block's
// payload is laid out across buffer-pool pages. Reading a block back
// materializes just that block, charged to the caller's arena; the rest
// of the tensor stays on pages (resident or spilled). Block metadata
// (coordinates, shape, page list) is kept in memory — it is catalog
// data, tiny compared to payloads.
//
// A store owns its pages privately by default — the right mode for
// transient activation relations, which are write-once/drop and would
// only pay hashing overhead for dedup. Constructed over a
// PhysicalBlockIndex instead, the store becomes a *logical* relation:
// Put resolves each payload through the content-addressed index, the
// entry's page list points at a shared ref-counted physical block (N
// fine-tuned model variants resolve identical weight blocks to the
// same pages, so they share buffer-pool frames too), and the dtor
// drops references rather than deleting pages.

#ifndef RELSERVE_STORAGE_BLOCK_STORE_H_
#define RELSERVE_STORAGE_BLOCK_STORE_H_

#include <cstdint>
#include <mutex>
#include <vector>

#include "common/result.h"
#include "storage/buffer_pool.h"
#include "storage/physical_block_index.h"
#include "tensor/tensor_block.h"

namespace relserve {

class BlockStore {
 public:
  struct BlockEntry {
    int64_t row_block = 0;
    int64_t col_block = 0;
    int64_t rows = 0;
    int64_t cols = 0;
    // Pages backing the payload. For a shared entry this is a copy of
    // the physical block's page list — reads never touch the index.
    std::vector<PageId> pages;
    // The ref-counted physical block serving this entry, or
    // kInvalidPhysicalBlockId for a privately owned entry.
    PhysicalBlockId physical = kInvalidPhysicalBlockId;

    bool shared() const { return physical != kInvalidPhysicalBlockId; }
    int64_t ByteSize() const {
      return rows * cols * static_cast<int64_t>(sizeof(float));
    }
  };

  // Private-page store (activations, and weights when dedup is off).
  BlockStore(BufferPool* pool, BlockedShape geometry)
      : pool_(pool), geometry_(geometry) {}

  // Shared store: every Put resolves through `index` (not owned, must
  // outlive the store) with elementwise `tolerance` (0 = byte-exact).
  BlockStore(PhysicalBlockIndex* index, BlockedShape geometry,
             float tolerance)
      : pool_(index->pool()),
        geometry_(geometry),
        index_(index),
        tolerance_(tolerance) {}

  // Dropping a store recycles its private pages back to the disk
  // manager's free list — intermediate activation relations are
  // transient, and without recycling every query would grow the spill
  // file. Shared entries release their index reference instead; the
  // physical pages die with the last referencing store.
  ~BlockStore();

  BlockStore(const BlockStore&) = delete;
  BlockStore& operator=(const BlockStore&) = delete;
  BlockStore(BlockStore&& other) noexcept
      : pool_(other.pool_),
        geometry_(other.geometry_),
        index_(other.index_),
        tolerance_(other.tolerance_),
        shared_blocks_(other.shared_blocks_),
        shared_bytes_(other.shared_bytes_),
        entries_(std::move(other.entries_)) {
    other.entries_.clear();
  }

  // Writes one block's payload to fresh pages and records its entry.
  // Thread-safe against concurrent Put (ParallelFor morsels emit
  // output blocks concurrently); the entry order then follows
  // completion order, which is irrelevant to the relation's contents.
  // Do not interleave Put with entries()/Get/ToMatrix on the same
  // store.
  Status Put(const TensorBlock& block);

  // Chunks an in-memory matrix and stores every block. Uses O(block)
  // transient memory (charged to `scratch`, may be null).
  Status PutMatrix(const Tensor& m, MemoryTracker* scratch = nullptr);

  // Reads a stored block back into a Tensor charged to `tracker`.
  // `prefetch_hits`, when non-null, accumulates how many of the
  // block's pages were pinned off a prefetcher-loaded frame.
  Result<TensorBlock> Get(const BlockEntry& entry,
                          MemoryTracker* tracker = nullptr,
                          int64_t* prefetch_hits = nullptr) const;

  // Issues asynchronous loads for every page of `entry` so a
  // following Get overlaps its disk reads with whatever the caller
  // computes in between. Best effort; returns the number of page
  // prefetches actually scheduled (0 when fully resident).
  int64_t PrefetchEntry(const BlockEntry& entry) const;

  // Reassembles the full matrix (requires it to fit in `tracker`).
  Result<Tensor> ToMatrix(MemoryTracker* tracker = nullptr) const;

  const std::vector<BlockEntry>& entries() const { return entries_; }
  const BlockedShape& geometry() const { return geometry_; }
  BufferPool* pool() const { return pool_; }
  PhysicalBlockIndex* index() const { return index_; }

  // Total payload bytes across all stored blocks (the *logical* size:
  // shared entries count fully even though their pages are shared).
  int64_t TotalBytes() const;

  // Dedup outcome of a shared store: entries that resolved to a
  // physical block that already existed, and their payload bytes
  // (i.e. bytes this store did not allocate). Zero for private
  // stores. Stable after the last Put.
  int64_t shared_blocks() const { return shared_blocks_; }
  int64_t shared_bytes() const { return shared_bytes_; }

 private:
  BufferPool* pool_;
  BlockedShape geometry_;
  PhysicalBlockIndex* index_ = nullptr;  // null = private pages
  float tolerance_ = 0.0f;
  int64_t shared_blocks_ = 0;  // under entries_mu_ during Put
  int64_t shared_bytes_ = 0;
  std::mutex entries_mu_;  // guards entries_ during concurrent Put
  std::vector<BlockEntry> entries_;
};

}  // namespace relserve

#endif  // RELSERVE_STORAGE_BLOCK_STORE_H_
