#include "storage/table_heap.h"

#include <algorithm>
#include <cstring>

namespace relserve {

namespace {

int32_t ReadI32(const char* p) {
  int32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

void WriteI32(char* p, int32_t v) { std::memcpy(p, &v, sizeof(v)); }

constexpr int32_t kOverflowTag = -1;

}  // namespace

Status TableHeap::Append(const char* data, int64_t size) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  const int64_t payload = kPageSize - kHeaderSize;
  if (size + static_cast<int64_t>(sizeof(int32_t)) <= payload) {
    RELSERVE_RETURN_NOT_OK(AppendInline(data, size));
    num_records_.fetch_add(1, std::memory_order_release);
    return Status::OK();
  }
  // Out-of-line: payload spans fresh overflow pages; the heap page
  // holds a stub referencing the overflow entry.
  OverflowEntry entry;
  entry.size = size;
  int64_t remaining = size;
  const char* src = data;
  while (remaining > 0) {
    PageId page_id = kInvalidPageId;
    RELSERVE_ASSIGN_OR_RETURN(char* page, pool_->NewPage(&page_id));
    const int64_t chunk = std::min(remaining, kPageSize);
    std::memcpy(page, src, chunk);
    RELSERVE_RETURN_NOT_OK(pool_->UnpinPage(page_id, /*dirty=*/true));
    entry.pages.push_back(page_id);
    src += chunk;
    remaining -= chunk;
  }
  const int64_t index = static_cast<int64_t>(overflow_.size());
  overflow_.push_back(std::move(entry));
  char stub[sizeof(int64_t)];
  std::memcpy(stub, &index, sizeof(index));
  RELSERVE_RETURN_NOT_OK(AppendInline(stub, sizeof(stub)));
  // Patch the stub's length tag to the overflow marker.
  {
    const PageId last = pages_.back();
    RELSERVE_ASSIGN_OR_RETURN(char* page, pool_->FetchPage(last));
    const int32_t used = ReadI32(page + 4);
    char* tag = page + kHeaderSize + used -
                static_cast<int64_t>(sizeof(stub)) - sizeof(int32_t);
    WriteI32(tag, kOverflowTag);
    RELSERVE_RETURN_NOT_OK(pool_->UnpinPage(last, /*dirty=*/true));
  }
  num_records_.fetch_add(1, std::memory_order_release);
  return Status::OK();
}

Status TableHeap::AppendInline(const char* data, int64_t size) {
  const int64_t need = size + sizeof(int32_t);
  // Try the last page first.
  if (!pages_.empty()) {
    const PageId last = pages_.back();
    RELSERVE_ASSIGN_OR_RETURN(char* page, pool_->FetchPage(last));
    const int32_t count = ReadI32(page);
    const int32_t used = ReadI32(page + 4);
    if (kHeaderSize + used + need <= kPageSize) {
      char* dst = page + kHeaderSize + used;
      WriteI32(dst, static_cast<int32_t>(size));
      std::memcpy(dst + sizeof(int32_t), data, size);
      WriteI32(page, count + 1);
      WriteI32(page + 4, used + static_cast<int32_t>(need));
      return pool_->UnpinPage(last, /*dirty=*/true);
    }
    RELSERVE_RETURN_NOT_OK(pool_->UnpinPage(last, /*dirty=*/false));
  }
  // Start a fresh page.
  PageId page_id = kInvalidPageId;
  RELSERVE_ASSIGN_OR_RETURN(char* page, pool_->NewPage(&page_id));
  WriteI32(page, 1);
  WriteI32(page + 4, static_cast<int32_t>(need));
  char* dst = page + kHeaderSize;
  WriteI32(dst, static_cast<int32_t>(size));
  std::memcpy(dst + sizeof(int32_t), data, size);
  RELSERVE_RETURN_NOT_OK(pool_->UnpinPage(page_id, /*dirty=*/true));
  pages_.push_back(page_id);
  return Status::OK();
}

Status TableHeap::ReadOverflow(int64_t index, std::string* out) const {
  OverflowEntry entry;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    if (index < 0 ||
        index >= static_cast<int64_t>(overflow_.size())) {
      return Status::Internal("bad overflow index " +
                              std::to_string(index));
    }
    entry = overflow_[index];
  }
  out->resize(entry.size);
  char* dst = out->data();
  int64_t remaining = entry.size;
  for (const PageId page_id : entry.pages) {
    RELSERVE_ASSIGN_OR_RETURN(char* page, pool_->FetchPage(page_id));
    const int64_t chunk = std::min(remaining, kPageSize);
    std::memcpy(dst, page, chunk);
    RELSERVE_RETURN_NOT_OK(pool_->UnpinPage(page_id, /*dirty=*/false));
    dst += chunk;
    remaining -= chunk;
  }
  if (remaining != 0) {
    return Status::Internal("overflow entry page list too short");
  }
  return Status::OK();
}

Status TableHeap::ReadPageRecords(int64_t page_index,
                                  std::vector<std::string>* out) const {
  // Decode the inline records (and stub indices) while the page is
  // pinned; resolve overflow payloads afterwards so only one page is
  // ever pinned at a time. The reader lock spans the page decode so a
  // concurrent Append cannot repack the page mid-copy.
  std::vector<int64_t> overflow_slots;  // out index -> overflow index
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    if (page_index < 0 ||
        page_index >= static_cast<int64_t>(pages_.size())) {
      return Status::InvalidArgument("page index " +
                                     std::to_string(page_index) +
                                     " out of range");
    }
    const PageId page_id = pages_[page_index];
    RELSERVE_ASSIGN_OR_RETURN(char* page, pool_->FetchPage(page_id));
    const int32_t count = ReadI32(page);
    const char* cursor = page + kHeaderSize;
    out->clear();
    out->reserve(count);
    overflow_slots.assign(count, -1);
    for (int32_t i = 0; i < count; ++i) {
      const int32_t len = ReadI32(cursor);
      cursor += sizeof(int32_t);
      if (len == kOverflowTag) {
        int64_t index;
        std::memcpy(&index, cursor, sizeof(index));
        cursor += sizeof(index);
        overflow_slots[i] = index;
        out->emplace_back();
      } else {
        out->emplace_back(cursor, len);
        cursor += len;
      }
    }
    RELSERVE_RETURN_NOT_OK(pool_->UnpinPage(page_id, /*dirty=*/false));
  }
  for (size_t i = 0; i < out->size(); ++i) {
    if (overflow_slots[i] >= 0) {
      RELSERVE_RETURN_NOT_OK(
          ReadOverflow(overflow_slots[i], &(*out)[i]));
    }
  }
  return Status::OK();
}

Status TableHeap::Scan(
    const std::function<Status(const char*, int64_t)>& fn) const {
  std::vector<std::string> records;
  for (int64_t p = 0; p < num_pages(); ++p) {
    RELSERVE_RETURN_NOT_OK(ReadPageRecords(p, &records));
    for (const std::string& record : records) {
      RELSERVE_RETURN_NOT_OK(
          fn(record.data(), static_cast<int64_t>(record.size())));
    }
  }
  return Status::OK();
}

}  // namespace relserve
