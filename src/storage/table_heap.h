// TableHeap: append-only record storage on buffer-pool pages.
//
// Records are opaque byte strings (the relational layer serializes
// rows into them). Each page holds a small header and a packed run of
// length-prefixed records. Records wider than a page's payload (wide
// image rows, e.g. LandCover's 250x250x3 floats) are stored out of
// line on a dedicated chain of overflow pages, with an inline stub
// (length tag -1 + overflow index) in the heap page — the classic
// TOAST/overflow-page design.
//
// Appending concurrently with scans is safe: Append runs under the
// writer half of an internal shared_mutex, page reads under the reader
// half, so a reader sees each page either before or after an append
// lands on it. Snapshot semantics (hiding rows committed after a
// reader pinned its version) are layered above via the VisibilityMap.

#ifndef RELSERVE_STORAGE_TABLE_HEAP_H_
#define RELSERVE_STORAGE_TABLE_HEAP_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/buffer_pool.h"

namespace relserve {

class TableHeap {
 public:
  explicit TableHeap(BufferPool* pool) : pool_(pool) {}

  TableHeap(const TableHeap&) = delete;
  TableHeap& operator=(const TableHeap&) = delete;

  // Appends one record of any size (large records go to overflow
  // pages).
  Status Append(const char* data, int64_t size);
  Status Append(const std::string& record) {
    return Append(record.data(), static_cast<int64_t>(record.size()));
  }

  // Invokes `fn(data, size)` for every record in insertion order.
  // Pages are fetched (and possibly reloaded from disk) one at a time,
  // so a scan never needs more than one resident page.
  Status Scan(
      const std::function<Status(const char*, int64_t)>& fn) const;

  // Decodes every record on the page at `page_index` (0-based within
  // this heap) into `out`. Lets pull-based scans hold only one page's
  // rows at a time.
  Status ReadPageRecords(int64_t page_index,
                         std::vector<std::string>* out) const;

  int64_t num_records() const {
    return num_records_.load(std::memory_order_acquire);
  }
  int64_t num_pages() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return static_cast<int64_t>(pages_.size());
  }

 private:
  // Page layout: [int32 count][int32 used][records...], where each
  // record is [int32 len][bytes]; len == -1 marks an overflow stub
  // whose payload is [int64 overflow_index].
  static constexpr int64_t kHeaderSize = 2 * sizeof(int32_t);

  struct OverflowEntry {
    int64_t size = 0;
    std::vector<PageId> pages;
  };

  // Appends an already-encoded inline record (fits a page).
  Status AppendInline(const char* data, int64_t size);

  // Reads overflow entry `index` into `out`.
  Status ReadOverflow(int64_t index, std::string* out) const;

  BufferPool* const pool_;
  // Appends exclusive, page/overflow reads shared.
  mutable std::shared_mutex mu_;
  std::vector<PageId> pages_;
  std::vector<OverflowEntry> overflow_;
  std::atomic<int64_t> num_records_{0};
};

}  // namespace relserve

#endif  // RELSERVE_STORAGE_TABLE_HEAP_H_
