// Write-ahead log: CRC32C-framed, LSN-stamped redo records for every
// catalog-visible mutation (DESIGN.md "Durability & snapshot
// isolation").
//
// On-disk frame, little-endian:
//
//   [u32 crc][u32 len][payload (len bytes)]
//
// where crc = CRC32C(payload) and the payload is
//
//   [u64 lsn][u8 type][u64 txn_id][u16 table_len][table bytes][body]
//
// with a per-type body:
//
//   kCreateTable  [u8 layout][u16 ncols][ncols x (u16 name_len, name,
//                 u8 value_type)]
//   kInsert       [u32 row_len][row bytes]       (Row::SerializeTo)
//   kUpdate       [i64 ordinal][u32 row_len][row bytes]
//   kDelete       [i64 ordinal]
//   kCommit       [u64 commit_version][u32 op_count]
//
// A transaction is its op records followed by one kCommit; recovery
// redoes only ops whose commit record survived. The log is the sole
// durable state (heap/columnar pages live in the temp spill file), so
// replay rebuilds tables wholesale — ARIES-lite: one analysis pass
// collecting commit versions, one redo pass in LSN order.
//
// Torn tails are expected, not errors: ReadAll stops at the first
// frame whose length runs past EOF or whose checksum fails, and Open
// truncates the file back to the last intact frame so new appends
// never land after garbage. Failpoints: "wal.append" (error / torn /
// bitflip on the frame buffer), "wal.fsync", "wal.recover", plus the
// io_util resume sites "wal.append.eintr"/"wal.append.short".

#ifndef RELSERVE_STORAGE_WAL_H_
#define RELSERVE_STORAGE_WAL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "relational/schema.h"

namespace relserve {

enum class WalFsyncPolicy {
  kNone,         // OS page cache only; a crash may lose the tail
  kEveryCommit,  // fsync inside each WaitDurable
  kGroupCommit,  // the first waiter leads: sleeps a short window so
                 // concurrent commits share one fsync
};

struct WalOptions {
  std::string path;
  WalFsyncPolicy fsync_policy = WalFsyncPolicy::kEveryCommit;
  // Leader's batching window under kGroupCommit.
  int64_t group_window_us = 200;
};

struct WalRecord {
  enum class Type : uint8_t {
    kCreateTable = 1,
    kInsert = 2,
    kUpdate = 3,
    kDelete = 4,
    kCommit = 5,
  };

  Type type = Type::kInsert;
  uint64_t lsn = 0;  // assigned by Append
  uint64_t txn_id = 0;
  std::string table;

  uint8_t layout = 0;            // kCreateTable: TableLayout
  std::string schema_encoding;   // kCreateTable (EncodeSchema)
  std::string row_bytes;         // kInsert / kUpdate payload
  int64_t ordinal = -1;          // kUpdate / kDelete target row
  uint64_t commit_version = 0;   // kCommit
  uint32_t op_count = 0;         // kCommit
};

// Schema wire form used by kCreateTable bodies (the Schema class has
// no serializer of its own).
void EncodeSchema(const Schema& schema, std::string* out);
Result<Schema> DecodeSchema(const char* data, int64_t size);

// Appends the full frame (crc + len + payload) for `rec` to `out`.
void EncodeWalRecord(const WalRecord& rec, std::string* out);
// Decodes one payload (after the crc/len header has been validated).
Result<WalRecord> DecodeWalPayload(const char* data, int64_t size);

class WriteAheadLog {
 public:
  // Opens (creating if absent) the log at options.path, scans it to
  // find the last intact frame, truncates any torn tail, and
  // positions appends after it.
  static Result<std::unique_ptr<WriteAheadLog>> Open(WalOptions options);

  ~WriteAheadLog();

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  // Stamps the next LSN into `rec`, frames it, and writes it at the
  // end of the log. Durability is separate: call WaitDurable with the
  // returned LSN. Serialized internally.
  Result<uint64_t> Append(WalRecord rec);

  // fsyncs the file ("wal.fsync" failpoint).
  Status Sync();

  // Blocks until everything up to `lsn` is durable per the fsync
  // policy. Under kGroupCommit the first waiter becomes the leader:
  // it sleeps group_window_us so concurrent commits pile on, then one
  // fsync covers them all. kNone returns immediately.
  Status WaitDurable(uint64_t lsn);

  uint64_t next_lsn() const {
    return next_lsn_.load(std::memory_order_relaxed);
  }
  uint64_t durable_lsn() const {
    return durable_lsn_.load(std::memory_order_relaxed);
  }
  int64_t size_bytes() const {
    return end_offset_.load(std::memory_order_relaxed);
  }
  const std::string& path() const { return options_.path; }
  const WalOptions& options() const { return options_; }

  // Reads every intact record of the log at `path` in LSN order,
  // stopping (not failing) at a torn tail. `torn_tail`, when given,
  // reports whether bytes past the last intact frame were dropped;
  // `boundaries` receives the byte offset just past each decoded
  // frame (the crash-sweep test cuts the file at these points).
  // NotFound when no file exists.
  static Result<std::vector<WalRecord>> ReadAll(
      const std::string& path, bool* torn_tail = nullptr,
      std::vector<int64_t>* boundaries = nullptr);

 private:
  explicit WriteAheadLog(WalOptions options)
      : options_(std::move(options)) {}

  const WalOptions options_;
  int fd_ = -1;

  // Append side: fd writes and the end offset.
  std::mutex append_mu_;
  std::atomic<uint64_t> next_lsn_{1};
  std::atomic<uint64_t> appended_lsn_{0};
  std::atomic<int64_t> end_offset_{0};

  // Durability side (group-commit leader election).
  std::mutex sync_mu_;
  std::condition_variable sync_cv_;
  std::atomic<uint64_t> durable_lsn_{0};
  bool sync_in_progress_ = false;
};

}  // namespace relserve

#endif  // RELSERVE_STORAGE_WAL_H_
