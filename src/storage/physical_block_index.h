// PhysicalBlockIndex: content-addressed, ref-counted physical block
// storage shared across every deployed model (paper Sec. 4(1); Zhou et
// al., "Serving Deep Learning Models with Deduplication from
// Relational Databases").
//
// Fine-tuned model variants share most of their weight pages. Instead
// of every deployment owning a private copy, block payloads are keyed
// by content: a CRC32C hash narrows to candidates, a byte-exact
// comparison (or a bounded L-infinity comparison in the accuracy-aware
// tolerance mode) confirms, and the caller gets back a ref-counted
// handle onto the one physical block all matching deployments share.
// Physical pages are freed exactly when the last reference drops —
// deploy 50 variants, undeploy in any order, the pool returns to
// baseline.
//
// Two payload arms live in the index:
//   - page-backed blocks (the relation-centric weight chunks): the
//     payload is laid out across buffer-pool pages, so N deployments
//     resolving the same block pin the *same frames* — buffer-pool hit
//     rate improves along with footprint;
//   - resident blocks (whole-tensor weights: UDF-centric matmuls,
//     conv kernels, biases): the canonical Tensor's refcounted buffer
//     is shared, charged to the working arena exactly once.
// The arms never dedup against each other — a handle's form is part of
// its identity.
//
// Concurrency: one mutex serializes Intern/Release/Materialize. All
// callers are deploy/undeploy-time (queries read block pages through
// the BufferPool without touching the index), so the lock is never on
// a serving hot path. Lock order: index mutex, then buffer-pool
// internals; the pool never calls back into the index.

#ifndef RELSERVE_STORAGE_PHYSICAL_BLOCK_INDEX_H_
#define RELSERVE_STORAGE_PHYSICAL_BLOCK_INDEX_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/result.h"
#include "storage/buffer_pool.h"
#include "tensor/tensor.h"
#include "tensor/tensor_block.h"

namespace relserve {

using PhysicalBlockId = int64_t;
inline constexpr PhysicalBlockId kInvalidPhysicalBlockId = -1;

// Snapshot of the index. "Live" numbers describe currently referenced
// blocks; the cumulative counters never decrease. logical_bytes is
// what naive per-model storage would hold resident; physical_bytes is
// what the shared index actually holds.
struct PhysicalBlockStats {
  int64_t unique_blocks = 0;   // live physical blocks
  int64_t logical_refs = 0;    // live references onto them
  int64_t physical_bytes = 0;  // live payload bytes, stored once
  int64_t logical_bytes = 0;   // live payload bytes, as referenced
  int64_t interned = 0;        // cumulative Intern calls
  int64_t dedup_hits = 0;      // cumulative Interns resolved to an
                               // existing block
  int64_t freed_blocks = 0;    // cumulative blocks freed at last ref
  // Largest elementwise error accepted by any tolerance-mode match.
  float max_substitution_error = 0.0f;

  double DedupRatio() const {
    return physical_bytes == 0
               ? 1.0
               : static_cast<double>(logical_bytes) / physical_bytes;
  }
  std::string ToString() const;
};

class PhysicalBlockIndex {
 public:
  // `pool` backs the page-backed arm; it may be null for a
  // resident-only index (the offline dedup path below).
  explicit PhysicalBlockIndex(BufferPool* pool) : pool_(pool) {}

  // Frees any pages still owned at teardown. Well-behaved callers
  // Release every handle first; this is the leak backstop.
  ~PhysicalBlockIndex();

  PhysicalBlockIndex(const PhysicalBlockIndex&) = delete;
  PhysicalBlockIndex& operator=(const PhysicalBlockIndex&) = delete;

  // One ref-counted handle. Exactly one payload form is populated:
  // `pages` for the page-backed arm, `payload` (a buffer-sharing
  // Tensor) for the resident arm. The pages remain property of the
  // index — callers read them through the BufferPool but must never
  // DeletePage them; dropping the reference is Release(id).
  struct Interned {
    PhysicalBlockId id = kInvalidPhysicalBlockId;
    std::vector<PageId> pages;
    Tensor payload;
    bool deduped = false;
    float match_error = 0.0f;
  };

  // Resolves `payload` to a page-backed physical block: an existing
  // block whose content matches within `tolerance` (byte-exact at
  // tolerance 0) gains a reference, otherwise the payload is written
  // to fresh pages. Requires a buffer pool.
  Result<Interned> Intern(const Tensor& payload, float tolerance);

  // Resident-arm counterpart. On a miss the canonical copy is cloned
  // into `tracker` (null = the input tensor's buffer is shared
  // as-is); on a hit the returned Tensor shares the canonical buffer
  // and charges nothing.
  Result<Interned> InternResident(const Tensor& payload,
                                  float tolerance,
                                  MemoryTracker* tracker = nullptr);

  // Adds a reference to an existing block (a caller cloning a handle
  // it already holds). NotFound for a dead or invalid id.
  Status AddRef(PhysicalBlockId id);

  // Drops one reference; at zero the block's pages go back to the
  // pool's free list (resident buffers die with their last Tensor).
  // Releasing an invalid/dead id is a no-op — dtor ordering in
  // callers is simpler when Release is idempotent past the end.
  void Release(PhysicalBlockId id);

  // Reads a block's payload back into a Tensor charged to `tracker`
  // (resident blocks return a buffer-sharing copy instead).
  Result<Tensor> Materialize(PhysicalBlockId id,
                             MemoryTracker* tracker = nullptr) const;

  PhysicalBlockStats stats() const;
  BufferPool* pool() const { return pool_; }

 private:
  struct Block {
    Shape shape;
    uint32_t crc = 0;
    int64_t bytes = 0;
    int64_t refs = 0;
    float mean = 0.0f;  // tolerance-mode prefilter
    bool resident = false;
    std::vector<PageId> pages;  // page-backed arm
    Tensor payload;             // resident arm
  };

  Result<Interned> InternImpl(const Tensor& payload, float tolerance,
                              bool resident, MemoryTracker* tracker);

  // All of the below require mu_ held.
  Result<PhysicalBlockId> FindMatch(const Tensor& payload,
                                    uint32_t crc, float mean,
                                    float tolerance, bool resident,
                                    float* match_error) const;
  // Byte-exact at tolerance 0, bounded L-infinity otherwise; streams
  // page-backed candidates through the pool one page at a time.
  Result<bool> PayloadMatches(const Block& block, const Tensor& payload,
                              float tolerance, float* max_diff) const;
  void Unindex(PhysicalBlockId id, const Block& block);

  static uint64_t HashKey(uint32_t crc, bool resident) {
    return (static_cast<uint64_t>(crc) << 1) |
           (resident ? 1u : 0u);
  }

  BufferPool* pool_;
  mutable std::mutex mu_;
  PhysicalBlockId next_id_ = 0;
  std::unordered_map<PhysicalBlockId, Block> blocks_;
  // Exact lookup: (crc, arm) -> candidate ids (shape + content
  // verified before a match is declared).
  std::unordered_multimap<uint64_t, PhysicalBlockId> by_hash_;
  // Tolerance lookup: (shape, arm) -> ids, scanned with the mean
  // prefilter before the full elementwise comparison.
  std::map<std::pair<std::string, bool>,
           std::vector<PhysicalBlockId>>
      by_shape_;
  PhysicalBlockStats stats_;
};

// --- Offline block deduplication (paper Sec. 4(1)) -------------------
//
// The catalog-scale batch form of the same machinery: deduplicate a
// list of logical tensor blocks against each other with elementwise
// tolerance (0 = exact), implemented by interning every block into a
// transient resident-arm PhysicalBlockIndex. bench_ablation_dedup
// measures it; the deploy path uses the index directly.

struct DedupStats {
  int64_t input_blocks = 0;
  int64_t unique_blocks = 0;
  int64_t input_bytes = 0;
  int64_t stored_bytes = 0;
  // Largest elementwise error introduced by any substitution.
  float max_substitution_error = 0.0f;

  double CompressionRatio() const {
    return stored_bytes == 0
               ? 1.0
               : static_cast<double>(input_bytes) / stored_bytes;
  }
  std::string ToString() const;
};

struct DedupResult {
  // Physical blocks actually stored (payloads shared with the inputs).
  std::vector<TensorBlock> unique_blocks;
  // mapping[i] = index into unique_blocks serving logical block i.
  std::vector<int64_t> mapping;
  // The logical coordinates of every input block, in input order
  // (needed to reconstruct the original layout: a shared physical
  // block serves several logical positions).
  std::vector<std::pair<int64_t, int64_t>> logical_coords;
  DedupStats stats;
};

// Deduplicates `blocks` with elementwise tolerance `tolerance`.
Result<DedupResult> DeduplicateBlocks(
    const std::vector<TensorBlock>& blocks, float tolerance);

// Reconstructs the logical block list from a dedup result (payloads
// are shared, not copied).
std::vector<TensorBlock> ExpandDedup(const DedupResult& dedup);

}  // namespace relserve

#endif  // RELSERVE_STORAGE_PHYSICAL_BLOCK_INDEX_H_
