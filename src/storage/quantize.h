// Uniform 8-bit quantization (paper Sec. 4(1)): the storage optimizer
// can keep multiple versions of a model with different size/accuracy
// trade-offs and let the query optimizer pick per the SLA.

#ifndef RELSERVE_STORAGE_QUANTIZE_H_
#define RELSERVE_STORAGE_QUANTIZE_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "tensor/tensor.h"

namespace relserve {

struct QuantizedTensor {
  Shape shape;
  std::vector<uint8_t> values;
  float scale = 1.0f;       // dequant: value * scale + offset
  float offset = 0.0f;

  int64_t ByteSize() const {
    return static_cast<int64_t>(values.size());
  }
};

// Affine-quantizes `t` to 8 bits over its [min, max] range.
Result<QuantizedTensor> QuantizeUniform8(const Tensor& t);

// Reconstructs a float tensor (with quantization error).
Result<Tensor> Dequantize(const QuantizedTensor& q,
                          MemoryTracker* tracker = nullptr);

// Max |original - dequantized| — the error bound the accuracy-aware
// optimizer reasons about. For uniform 8-bit this is <= range/2/255.
float QuantizationError(const Tensor& original,
                        const QuantizedTensor& q);

}  // namespace relserve

#endif  // RELSERVE_STORAGE_QUANTIZE_H_
