#include "storage/catalog.h"

namespace relserve {

Result<TableInfo*> Catalog::CreateTable(const std::string& name,
                                        Schema schema,
                                        TableLayout layout) {
  if (tables_.count(name) > 0) {
    return Status::AlreadyExists("table '" + name + "'");
  }
  auto info = std::make_unique<TableInfo>();
  info->name = name;
  info->schema = std::move(schema);
  info->layout = layout;
  if (layout == TableLayout::kColumnar) {
    info->columnar =
        std::make_unique<ColumnarTable>(pool_, info->schema);
  } else {
    info->heap = std::make_unique<TableHeap>(pool_);
  }
  info->visibility = std::make_unique<VisibilityMap>();
  TableInfo* raw = info.get();
  tables_[name] = std::move(info);
  return raw;
}

Result<TableInfo*> Catalog::GetTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("table '" + name + "'");
  }
  return it->second.get();
}

Result<BlockStore*> Catalog::CreateTensorRelation(
    const std::string& name, BlockedShape geometry) {
  if (tensor_relations_.count(name) > 0) {
    return Status::AlreadyExists("tensor relation '" + name + "'");
  }
  auto store = std::make_unique<BlockStore>(pool_, geometry);
  BlockStore* raw = store.get();
  tensor_relations_[name] = std::move(store);
  return raw;
}

Result<BlockStore*> Catalog::GetTensorRelation(const std::string& name) {
  auto it = tensor_relations_.find(name);
  if (it == tensor_relations_.end()) {
    return Status::NotFound("tensor relation '" + name + "'");
  }
  return it->second.get();
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, info] : tables_) names.push_back(name);
  return names;
}

std::vector<std::string> Catalog::TensorRelationNames() const {
  std::vector<std::string> names;
  names.reserve(tensor_relations_.size());
  for (const auto& [name, store] : tensor_relations_) {
    names.push_back(name);
  }
  return names;
}

}  // namespace relserve
