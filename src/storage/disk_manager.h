// DiskManager: page-granular I/O on a single backing file.
//
// This is the spill target of the buffer pool — the mechanism that
// lets relation-centric execution stream tensors larger than memory
// (paper Sec. 7.1, Table 3).
//
// Reliability contract (DESIGN.md "Fault model & recovery"):
//  - Construction never aborts. DiskManager::Open returns the error
//    as a Status; the (still-available) constructor records it and
//    every subsequent I/O call surfaces it typed.
//  - Every page is written under a CRC32C header and verified on
//    read. A mismatch is retried with bounded re-reads (transient bus
//    or cable faults heal); a persistent mismatch quarantines the
//    page and returns Status::DataLoss — corrupted bytes are never
//    handed to a tensor block. A successful rewrite lifts the
//    quarantine.
//  - Fault injection goes through the failpoint registry (sites
//    "disk.open", "disk.read", "disk.write", plus the ".eintr" /
//    ".short" syscall-resume sites), not ad-hoc hooks.

#ifndef RELSERVE_STORAGE_DISK_MANAGER_H_
#define RELSERVE_STORAGE_DISK_MANAGER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/page.h"

namespace relserve {

struct DiskManagerOptions {
  // Verify a CRC32C page header on every read (hardware SSE4.2 when
  // the CPU has it, table fallback otherwise). The
  // RELSERVE_PAGE_CHECKSUMS environment variable ("0"/"off" disables)
  // flips the built-in default — the bench ablation knob.
  bool checksum_pages;
  // Bounded re-reads after a checksum mismatch before the page is
  // quarantined and DataLoss returned.
  int checksum_read_retries = 2;

  DiskManagerOptions();
};

class DiskManager {
 public:
  // Opens (creating/truncating) the backing file at `path`; empty
  // path = unique temporary file unlinked on destruction. Failure to
  // open comes back as Status::IOError — never an abort.
  static Result<std::unique_ptr<DiskManager>> Open(
      std::string path = "", DiskManagerOptions options = {});

  // Direct construction is kept for embedding in objects that cannot
  // fail to construct (test fixtures, sessions). It records any open
  // failure in status() instead of aborting; I/O on a failed manager
  // returns that status.
  explicit DiskManager(std::string path = "",
                       DiskManagerOptions options = {});
  ~DiskManager();

  DiskManager(const DiskManager&) = delete;
  DiskManager& operator=(const DiskManager&) = delete;

  // Hands out a page id — recycled from the free list if possible,
  // fresh otherwise (no I/O until first write).
  PageId AllocatePage();

  // Returns a page to the free list for reuse. The caller must hold
  // no live references to it.
  void FreePage(PageId page_id);

  int64_t num_free() const;

  // Reads exactly kPageSize payload bytes into `out`. Never-written
  // pages read back zero-filled (sparse-file semantics). With
  // checksums enabled a header mismatch triggers bounded re-reads,
  // then quarantine + Status::DataLoss.
  Status ReadPage(PageId page_id, char* out);

  // Writes kPageSize payload bytes under a fresh header. A successful
  // write clears any quarantine on the page (the bad bytes are gone).
  Status WritePage(PageId page_id, const char* data);

  int64_t num_reads() const { return num_reads_.load(); }
  int64_t num_writes() const { return num_writes_.load(); }
  int64_t num_allocated() const { return next_page_id_.load(); }

  // Checksum / recovery accounting.
  int64_t num_checksum_failures() const {
    return num_checksum_failures_.load();
  }
  int64_t num_read_retries() const { return num_read_retries_.load(); }
  int64_t num_quarantined() const;
  bool IsQuarantined(PageId page_id) const;

  bool checksums_enabled() const { return options_.checksum_pages; }
  const std::string& path() const { return path_; }

  // Open outcome; all I/O on a !ok() manager returns this status.
  Status status() const;
  bool ok() const { return fd_ >= 0; }

 private:
  // One verification attempt: read header + payload, verify, zero-pad
  // holes. Returns OK, DataLoss (checksum/page-id mismatch — caller
  // may retry), or IOError.
  Status ReadAttempt(PageId page_id, char* out);

  DiskManagerOptions options_;
  std::string path_;
  bool unlink_on_close_ = false;
  int fd_ = -1;
  Status open_status_;
  mutable std::mutex free_mu_;
  std::vector<PageId> free_list_;
  mutable std::mutex quarantine_mu_;
  std::unordered_set<PageId> quarantined_;
  std::atomic<PageId> next_page_id_{0};
  std::atomic<int64_t> num_reads_{0};
  std::atomic<int64_t> num_writes_{0};
  std::atomic<int64_t> num_checksum_failures_{0};
  std::atomic<int64_t> num_read_retries_{0};
};

}  // namespace relserve

#endif  // RELSERVE_STORAGE_DISK_MANAGER_H_
