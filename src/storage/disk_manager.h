// DiskManager: page-granular I/O on a single backing file.
//
// This is the spill target of the buffer pool — the mechanism that
// lets relation-centric execution stream tensors larger than memory
// (paper Sec. 7.1, Table 3).

#ifndef RELSERVE_STORAGE_DISK_MANAGER_H_
#define RELSERVE_STORAGE_DISK_MANAGER_H_

#include <atomic>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/page.h"

namespace relserve {

class DiskManager {
 public:
  // Creates/truncates the backing file at `path`. If `path` is empty a
  // unique temporary file is created and unlinked on destruction.
  explicit DiskManager(std::string path = "");
  ~DiskManager();

  DiskManager(const DiskManager&) = delete;
  DiskManager& operator=(const DiskManager&) = delete;

  // Hands out a page id — recycled from the free list if possible,
  // fresh otherwise (no I/O until first write).
  PageId AllocatePage();

  // Returns a page to the free list for reuse. The caller must hold
  // no live references to it.
  void FreePage(PageId page_id);

  int64_t num_free() const;

  // Reads/writes exactly kPageSize bytes at the page's offset.
  // Positioned I/O: safe to call from many threads concurrently, and
  // distinct pages' transfers overlap in the kernel.
  Status ReadPage(PageId page_id, char* out);
  Status WritePage(PageId page_id, const char* data);

  int64_t num_reads() const { return num_reads_.load(); }
  int64_t num_writes() const { return num_writes_.load(); }
  int64_t num_allocated() const { return next_page_id_.load(); }

  bool ok() const { return fd_ >= 0; }

  // Test hook: the next `n` WritePage calls fail with IOError, then
  // behaviour returns to normal. Lets tests drive the spill-failure
  // paths without a real full disk.
  void InjectWriteFailures(int n) { inject_write_failures_.store(n); }

 private:
  std::string path_;
  bool unlink_on_close_ = false;
  int fd_ = -1;
  mutable std::mutex free_mu_;
  std::vector<PageId> free_list_;
  std::atomic<PageId> next_page_id_{0};
  std::atomic<int64_t> num_reads_{0};
  std::atomic<int64_t> num_writes_{0};
  std::atomic<int> inject_write_failures_{0};
};

}  // namespace relserve

#endif  // RELSERVE_STORAGE_DISK_MANAGER_H_
