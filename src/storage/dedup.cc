#include "storage/dedup.h"

#include <cmath>

namespace relserve {

namespace {

// Mean of a payload; used as a cheap prefilter before the full
// elementwise comparison.
float BlockMean(const Tensor& t) {
  const float* data = t.data();
  const int64_t n = t.NumElements();
  if (n == 0) return 0.0f;
  double sum = 0.0;
  for (int64_t i = 0; i < n; ++i) sum += data[i];
  return static_cast<float>(sum / n);
}

// Max |a-b| if it stays <= tolerance, else a value > tolerance (early
// exit).
float BoundedMaxAbsDiff(const Tensor& a, const Tensor& b,
                        float tolerance) {
  const float* ad = a.data();
  const float* bd = b.data();
  const int64_t n = a.NumElements();
  float max_diff = 0.0f;
  for (int64_t i = 0; i < n; ++i) {
    const float d = std::fabs(ad[i] - bd[i]);
    if (d > tolerance) return d;
    if (d > max_diff) max_diff = d;
  }
  return max_diff;
}

}  // namespace

std::string DedupStats::ToString() const {
  return "blocks " + std::to_string(input_blocks) + " -> " +
         std::to_string(unique_blocks) + ", bytes " +
         std::to_string(input_bytes) + " -> " +
         std::to_string(stored_bytes) +
         ", max_err=" + std::to_string(max_substitution_error);
}

Result<DedupResult> DeduplicateBlocks(
    const std::vector<TensorBlock>& blocks, float tolerance) {
  if (tolerance < 0.0f) {
    return Status::InvalidArgument("negative dedup tolerance");
  }
  DedupResult out;
  out.mapping.reserve(blocks.size());
  out.logical_coords.reserve(blocks.size());
  std::vector<float> means;
  for (const TensorBlock& block : blocks) {
    out.logical_coords.emplace_back(block.row_block, block.col_block);
    out.stats.input_blocks += 1;
    out.stats.input_bytes += block.data.ByteSize();
    const float mean = BlockMean(block.data);
    int64_t match = -1;
    float match_err = 0.0f;
    for (int64_t u = 0;
         u < static_cast<int64_t>(out.unique_blocks.size()); ++u) {
      const Tensor& candidate = out.unique_blocks[u].data;
      if (candidate.shape() != block.data.shape()) continue;
      if (std::fabs(means[u] - mean) > tolerance) continue;
      const float err =
          BoundedMaxAbsDiff(candidate, block.data, tolerance);
      if (err <= tolerance) {
        match = u;
        match_err = err;
        break;
      }
    }
    if (match >= 0) {
      out.mapping.push_back(match);
      if (match_err > out.stats.max_substitution_error) {
        out.stats.max_substitution_error = match_err;
      }
    } else {
      out.mapping.push_back(
          static_cast<int64_t>(out.unique_blocks.size()));
      out.unique_blocks.push_back(blocks[out.stats.input_blocks - 1]);
      means.push_back(mean);
      out.stats.stored_bytes += block.data.ByteSize();
    }
  }
  out.stats.unique_blocks =
      static_cast<int64_t>(out.unique_blocks.size());
  return out;
}

std::vector<TensorBlock> ExpandDedup(const DedupResult& dedup) {
  std::vector<TensorBlock> out;
  out.reserve(dedup.mapping.size());
  for (size_t i = 0; i < dedup.mapping.size(); ++i) {
    TensorBlock block = dedup.unique_blocks[dedup.mapping[i]];
    // Payload is shared; coordinates are the logical position's.
    block.row_block = dedup.logical_coords[i].first;
    block.col_block = dedup.logical_coords[i].second;
    out.push_back(std::move(block));
  }
  return out;
}

}  // namespace relserve
