#include "storage/quantize.h"

#include <algorithm>
#include <cmath>

namespace relserve {

Result<QuantizedTensor> QuantizeUniform8(const Tensor& t) {
  if (!t.is_valid()) {
    return Status::InvalidArgument("quantize of empty tensor");
  }
  const float* data = t.data();
  const int64_t n = t.NumElements();
  float lo = data[0], hi = data[0];
  for (int64_t i = 1; i < n; ++i) {
    lo = std::min(lo, data[i]);
    hi = std::max(hi, data[i]);
  }
  QuantizedTensor q;
  q.shape = t.shape();
  q.offset = lo;
  q.scale = (hi > lo) ? (hi - lo) / 255.0f : 1.0f;
  q.values.resize(n);
  const float inv_scale = 1.0f / q.scale;
  for (int64_t i = 0; i < n; ++i) {
    const float normalized = (data[i] - q.offset) * inv_scale;
    q.values[i] = static_cast<uint8_t>(
        std::clamp(std::lround(normalized), 0L, 255L));
  }
  return q;
}

Result<Tensor> Dequantize(const QuantizedTensor& q,
                          MemoryTracker* tracker) {
  RELSERVE_ASSIGN_OR_RETURN(Tensor t, Tensor::Create(q.shape, tracker));
  float* data = t.data();
  for (size_t i = 0; i < q.values.size(); ++i) {
    data[i] = q.values[i] * q.scale + q.offset;
  }
  return t;
}

float QuantizationError(const Tensor& original,
                        const QuantizedTensor& q) {
  const float* data = original.data();
  float max_err = 0.0f;
  for (size_t i = 0; i < q.values.size(); ++i) {
    const float restored = q.values[i] * q.scale + q.offset;
    max_err = std::max(max_err, std::fabs(data[i] - restored));
  }
  return max_err;
}

}  // namespace relserve
