#include "storage/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <thread>

#include "common/crc32c.h"
#include "common/failpoint.h"
#include "common/io_util.h"

namespace relserve {

namespace {

// A single frame larger than this is treated as a torn/corrupt tail
// on replay rather than an allocation request.
constexpr int64_t kMaxFrameBytes = 256LL << 20;

template <typename T>
void AppendPod(std::string* out, T v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
bool ReadPod(const char*& cursor, const char* end, T* v) {
  if (cursor + sizeof(T) > end) return false;
  std::memcpy(v, cursor, sizeof(T));
  cursor += sizeof(T);
  return true;
}

bool ReadBytes(const char*& cursor, const char* end, int64_t n,
               std::string* out) {
  if (n < 0 || cursor + n > end) return false;
  out->assign(cursor, n);
  cursor += n;
  return true;
}

}  // namespace

void EncodeSchema(const Schema& schema, std::string* out) {
  AppendPod<uint16_t>(out, static_cast<uint16_t>(schema.num_columns()));
  for (const Column& col : schema.columns()) {
    AppendPod<uint16_t>(out, static_cast<uint16_t>(col.name.size()));
    out->append(col.name);
    AppendPod<uint8_t>(out, static_cast<uint8_t>(col.type));
  }
}

Result<Schema> DecodeSchema(const char* data, int64_t size) {
  const char* cursor = data;
  const char* end = data + size;
  uint16_t ncols = 0;
  if (!ReadPod(cursor, end, &ncols)) {
    return Status::DataLoss("wal: truncated schema encoding");
  }
  std::vector<Column> columns;
  columns.reserve(ncols);
  for (uint16_t c = 0; c < ncols; ++c) {
    uint16_t name_len = 0;
    std::string name;
    uint8_t type_tag = 0;
    if (!ReadPod(cursor, end, &name_len) ||
        !ReadBytes(cursor, end, name_len, &name) ||
        !ReadPod(cursor, end, &type_tag) || type_tag > 3) {
      return Status::DataLoss("wal: truncated schema column");
    }
    columns.push_back(
        Column{std::move(name), static_cast<ValueType>(type_tag)});
  }
  if (cursor != end) {
    return Status::DataLoss("wal: trailing bytes after schema");
  }
  return Schema(std::move(columns));
}

void EncodeWalRecord(const WalRecord& rec, std::string* out) {
  std::string payload;
  AppendPod<uint64_t>(&payload, rec.lsn);
  AppendPod<uint8_t>(&payload, static_cast<uint8_t>(rec.type));
  AppendPod<uint64_t>(&payload, rec.txn_id);
  AppendPod<uint16_t>(&payload, static_cast<uint16_t>(rec.table.size()));
  payload.append(rec.table);
  switch (rec.type) {
    case WalRecord::Type::kCreateTable:
      AppendPod<uint8_t>(&payload, rec.layout);
      payload.append(rec.schema_encoding);
      break;
    case WalRecord::Type::kInsert:
      AppendPod<uint32_t>(&payload,
                          static_cast<uint32_t>(rec.row_bytes.size()));
      payload.append(rec.row_bytes);
      break;
    case WalRecord::Type::kUpdate:
      AppendPod<int64_t>(&payload, rec.ordinal);
      AppendPod<uint32_t>(&payload,
                          static_cast<uint32_t>(rec.row_bytes.size()));
      payload.append(rec.row_bytes);
      break;
    case WalRecord::Type::kDelete:
      AppendPod<int64_t>(&payload, rec.ordinal);
      break;
    case WalRecord::Type::kCommit:
      AppendPod<uint64_t>(&payload, rec.commit_version);
      AppendPod<uint32_t>(&payload, rec.op_count);
      break;
  }
  const uint32_t crc =
      crc32c::Value(payload.data(), payload.size());
  AppendPod<uint32_t>(out, crc);
  AppendPod<uint32_t>(out, static_cast<uint32_t>(payload.size()));
  out->append(payload);
}

Result<WalRecord> DecodeWalPayload(const char* data, int64_t size) {
  const char* cursor = data;
  const char* end = data + size;
  WalRecord rec;
  uint8_t type_tag = 0;
  uint16_t table_len = 0;
  if (!ReadPod(cursor, end, &rec.lsn) ||
      !ReadPod(cursor, end, &type_tag) ||
      !ReadPod(cursor, end, &rec.txn_id) ||
      !ReadPod(cursor, end, &table_len) ||
      !ReadBytes(cursor, end, table_len, &rec.table) || type_tag < 1 ||
      type_tag > 5) {
    return Status::DataLoss("wal: corrupt record header");
  }
  rec.type = static_cast<WalRecord::Type>(type_tag);
  switch (rec.type) {
    case WalRecord::Type::kCreateTable: {
      if (!ReadPod(cursor, end, &rec.layout)) {
        return Status::DataLoss("wal: truncated create-table record");
      }
      rec.schema_encoding.assign(cursor, end - cursor);
      cursor = end;
      break;
    }
    case WalRecord::Type::kInsert: {
      uint32_t row_len = 0;
      if (!ReadPod(cursor, end, &row_len) ||
          !ReadBytes(cursor, end, row_len, &rec.row_bytes)) {
        return Status::DataLoss("wal: truncated insert record");
      }
      break;
    }
    case WalRecord::Type::kUpdate: {
      uint32_t row_len = 0;
      if (!ReadPod(cursor, end, &rec.ordinal) ||
          !ReadPod(cursor, end, &row_len) ||
          !ReadBytes(cursor, end, row_len, &rec.row_bytes)) {
        return Status::DataLoss("wal: truncated update record");
      }
      break;
    }
    case WalRecord::Type::kDelete: {
      if (!ReadPod(cursor, end, &rec.ordinal)) {
        return Status::DataLoss("wal: truncated delete record");
      }
      break;
    }
    case WalRecord::Type::kCommit: {
      if (!ReadPod(cursor, end, &rec.commit_version) ||
          !ReadPod(cursor, end, &rec.op_count)) {
        return Status::DataLoss("wal: truncated commit record");
      }
      break;
    }
  }
  if (cursor != end) {
    return Status::DataLoss("wal: trailing bytes in record payload");
  }
  return rec;
}

Result<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Open(
    WalOptions options) {
  if (options.path.empty()) {
    return Status::InvalidArgument("wal path is empty");
  }
  auto wal =
      std::unique_ptr<WriteAheadLog>(new WriteAheadLog(options));
  const int fd = io::RetryEintr([&] {
    return ::open(options.path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC,
                  0644);
  });
  if (fd < 0) {
    return Status::IOError("wal open '" + options.path +
                           "': " + std::strerror(errno));
  }
  wal->fd_ = fd;

  // Scan to the last intact frame; anything beyond is a torn tail
  // from a crash mid-append — truncate so new frames never follow
  // garbage.
  bool torn = false;
  std::vector<int64_t> boundaries;
  Result<std::vector<WalRecord>> records =
      ReadAll(options.path, &torn, &boundaries);
  RELSERVE_RETURN_NOT_OK(records.status());
  const int64_t valid_bytes =
      boundaries.empty() ? 0 : boundaries.back();
  if (torn) {
    if (io::RetryEintr([&] { return ::ftruncate(fd, valid_bytes); }) <
        0) {
      return Status::IOError("wal truncate '" + options.path +
                             "': " + std::strerror(errno));
    }
  }
  uint64_t last_lsn = 0;
  for (const WalRecord& rec : *records) {
    last_lsn = std::max(last_lsn, rec.lsn);
  }
  wal->next_lsn_.store(last_lsn + 1, std::memory_order_relaxed);
  wal->appended_lsn_.store(last_lsn, std::memory_order_relaxed);
  wal->durable_lsn_.store(last_lsn, std::memory_order_relaxed);
  wal->end_offset_.store(valid_bytes, std::memory_order_relaxed);
  return wal;
}

WriteAheadLog::~WriteAheadLog() {
  if (fd_ >= 0) ::close(fd_);
}

Result<uint64_t> WriteAheadLog::Append(WalRecord rec) {
  std::lock_guard<std::mutex> lock(append_mu_);
  rec.lsn = next_lsn_.load(std::memory_order_relaxed);
  std::string frame;
  EncodeWalRecord(rec, &frame);

  int64_t io_len = static_cast<int64_t>(frame.size());
  RELSERVE_RETURN_NOT_OK(failpoint::InjectedIo(
      "wal.append", frame.data(), io_len, &io_len));

  const int64_t offset = end_offset_.load(std::memory_order_relaxed);
  RELSERVE_RETURN_NOT_OK(io::PwriteFull(fd_, frame.data(), io_len,
                                        offset, "wal.append.eintr",
                                        "wal.append.short"));
  // A torn failpoint persisted only a prefix (simulated crash
  // mid-write): the tail is unreadable on replay, and the offset
  // advances by what actually hit the file so later appends land
  // right after it — exactly where a real crash would leave the log.
  end_offset_.store(offset + io_len, std::memory_order_relaxed);
  next_lsn_.store(rec.lsn + 1, std::memory_order_relaxed);
  appended_lsn_.store(rec.lsn, std::memory_order_release);
  return rec.lsn;
}

Status WriteAheadLog::Sync() {
  RELSERVE_RETURN_NOT_OK(failpoint::InjectedStatus("wal.fsync"));
  if (io::RetryEintr([&] { return ::fsync(fd_); }) < 0) {
    return Status::IOError("wal fsync: " + std::string(strerror(errno)));
  }
  return Status::OK();
}

Status WriteAheadLog::WaitDurable(uint64_t lsn) {
  if (options_.fsync_policy == WalFsyncPolicy::kNone) {
    return Status::OK();
  }
  std::unique_lock<std::mutex> lock(sync_mu_);
  for (;;) {
    if (durable_lsn_.load(std::memory_order_relaxed) >= lsn) {
      return Status::OK();
    }
    if (!sync_in_progress_) break;
    // A leader's fsync is in flight; it may already cover this LSN.
    sync_cv_.wait(lock);
  }
  sync_in_progress_ = true;
  lock.unlock();
  if (options_.fsync_policy == WalFsyncPolicy::kGroupCommit &&
      options_.group_window_us > 0) {
    // Batching window: commits arriving now ride this fsync.
    std::this_thread::sleep_for(
        std::chrono::microseconds(options_.group_window_us));
  }
  const uint64_t target = appended_lsn_.load(std::memory_order_acquire);
  const Status synced = Sync();
  lock.lock();
  sync_in_progress_ = false;
  if (synced.ok()) {
    uint64_t cur = durable_lsn_.load(std::memory_order_relaxed);
    if (cur < target) {
      durable_lsn_.store(target, std::memory_order_relaxed);
    }
  }
  sync_cv_.notify_all();
  RELSERVE_RETURN_NOT_OK(synced);
  return durable_lsn_.load(std::memory_order_relaxed) >= lsn
             ? Status::OK()
             : Status::Internal("wal: fsync did not cover lsn " +
                                std::to_string(lsn));
}

Result<std::vector<WalRecord>> WriteAheadLog::ReadAll(
    const std::string& path, bool* torn_tail,
    std::vector<int64_t>* boundaries) {
  if (torn_tail != nullptr) *torn_tail = false;
  const int fd = io::RetryEintr(
      [&] { return ::open(path.c_str(), O_RDONLY | O_CLOEXEC); });
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound("wal '" + path + "' does not exist");
    }
    return Status::IOError("wal open '" + path +
                           "': " + std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) < 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IOError("wal stat '" + path + "': " + err);
  }
  std::string contents(static_cast<size_t>(st.st_size), '\0');
  int64_t done = 0;
  const Status read =
      st.st_size == 0
          ? Status::OK()
          : io::PreadFull(fd, contents.data(), st.st_size, 0, nullptr,
                          nullptr, &done);
  ::close(fd);
  RELSERVE_RETURN_NOT_OK(read);
  contents.resize(static_cast<size_t>(done));

  std::vector<WalRecord> records;
  int64_t offset = 0;
  const int64_t size = static_cast<int64_t>(contents.size());
  uint64_t expect_lsn = 0;
  while (offset + 8 <= size) {
    uint32_t crc = 0;
    uint32_t len = 0;
    std::memcpy(&crc, contents.data() + offset, 4);
    std::memcpy(&len, contents.data() + offset + 4, 4);
    if (len > kMaxFrameBytes || offset + 8 + len > size) break;
    const char* payload = contents.data() + offset + 8;
    if (crc32c::Value(payload, len) != crc) break;
    Result<WalRecord> rec = DecodeWalPayload(payload, len);
    if (!rec.ok()) break;  // checksum-clean but undecodable: stop here
    // LSNs must ascend by one; a replayed/duplicated frame means the
    // tail is not trustworthy either.
    if (expect_lsn != 0 && rec->lsn != expect_lsn + 1) break;
    expect_lsn = rec->lsn;
    offset += 8 + len;
    records.push_back(std::move(*rec));
    if (boundaries != nullptr) boundaries->push_back(offset);
  }
  if (torn_tail != nullptr) *torn_tail = offset < size;
  return records;
}

}  // namespace relserve
