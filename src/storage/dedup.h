// Accuracy-aware tensor-block deduplication (paper Sec. 4(1)).
//
// Relational data must be stored exactly, but model weights tolerate
// bounded error. Blocks whose payloads agree within an L-infinity
// tolerance are stored once; the logical blocks become references to
// the shared physical block. Tolerance 0 gives exact dedup.

#ifndef RELSERVE_STORAGE_DEDUP_H_
#define RELSERVE_STORAGE_DEDUP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "tensor/tensor_block.h"

namespace relserve {

struct DedupStats {
  int64_t input_blocks = 0;
  int64_t unique_blocks = 0;
  int64_t input_bytes = 0;
  int64_t stored_bytes = 0;
  // Largest elementwise error introduced by any substitution.
  float max_substitution_error = 0.0f;

  double CompressionRatio() const {
    return stored_bytes == 0
               ? 1.0
               : static_cast<double>(input_bytes) / stored_bytes;
  }
  std::string ToString() const;
};

struct DedupResult {
  // Physical blocks actually stored.
  std::vector<TensorBlock> unique_blocks;
  // mapping[i] = index into unique_blocks serving logical block i.
  std::vector<int64_t> mapping;
  // The logical coordinates of every input block, in input order
  // (needed to reconstruct the original layout: a shared physical
  // block serves several logical positions).
  std::vector<std::pair<int64_t, int64_t>> logical_coords;
  DedupStats stats;
};

// Deduplicates `blocks` with elementwise tolerance `tolerance`.
// Quadratic in the number of *unique* blocks but with a cheap
// mean/shape prefilter, which is fine at catalog scale.
Result<DedupResult> DeduplicateBlocks(
    const std::vector<TensorBlock>& blocks, float tolerance);

// Reconstructs the logical block list from a dedup result (payloads
// are shared, not copied).
std::vector<TensorBlock> ExpandDedup(const DedupResult& dedup);

}  // namespace relserve

#endif  // RELSERVE_STORAGE_DEDUP_H_
