// ARIES-lite redo recovery: rebuild catalog tables from the WAL.
//
// The WAL is the sole durable state — heap and columnar pages live in
// the DiskManager's temp spill file, which does not survive a process
// restart. Recovery therefore replays history wholesale rather than
// from a checkpoint:
//
//   1. analysis pass: scan every intact record (torn tails already
//      dropped by ReadAll), collecting txn_id -> commit_version for
//      each transaction whose kCommit record survived;
//   2. redo pass: re-apply the op records of committed transactions in
//      LSN order — CreateTable, then Insert/Update/Delete with the
//      transaction's commit version stamped into the table's
//      VisibilityMap.
//
// Op records of uncommitted transactions (the crash cut them off
// before their kCommit hit the disk) are counted and dropped — never
// applied, so no phantom rows. Because the commit path holds one lock
// across log-and-apply, records of distinct transactions never
// interleave in the log and replay order equals original apply order:
// row ordinals after recovery match the ordinals the live system
// logged in its Update/Delete records.

#ifndef RELSERVE_STORAGE_RECOVERY_H_
#define RELSERVE_STORAGE_RECOVERY_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "storage/catalog.h"
#include "storage/mvcc.h"
#include "storage/wal.h"

namespace relserve {

struct RecoveryStats {
  int64_t records_scanned = 0;
  int64_t committed_txns = 0;
  int64_t replayed_ops = 0;
  int64_t dropped_uncommitted_ops = 0;
  uint64_t last_durable_lsn = 0;
  Version max_version = 0;
  bool torn_tail = false;
};

// Replays the log at `wal_path` into `catalog` (expected freshly
// constructed) and advances `clock` past every recovered commit
// version. A missing log file is a clean cold start: returns zeroed
// stats, not an error. Trips the "wal.recover" failpoint before
// reading anything.
Result<RecoveryStats> RecoverCatalog(const std::string& wal_path,
                                     Catalog* catalog,
                                     VersionClock* clock);

}  // namespace relserve

#endif  // RELSERVE_STORAGE_RECOVERY_H_
