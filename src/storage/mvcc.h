// MVCC snapshot visibility for serve-while-ingest (DESIGN.md
// "Durability & snapshot isolation").
//
// Every committed write carries a version from a monotonic clock, and
// every row carries a [begin, end) version interval in a side table
// (the VisibilityMap). A reader pins a snapshot — the latest
// *published* version — before scanning, and sees exactly the rows
// whose interval contains that snapshot:
//
//   visible(row, snap)  :=  begin(row) <= snap
//                           && (end(row) == kLiveRow || end(row) > snap)
//
// The commit protocol (ServingSession::ApplyWrite) makes this work
// without per-row pending-transaction sentinels: storage mutations are
// applied *before* the commit version is published, so a concurrent
// reader that pinned its snapshot earlier can never observe a
// partially applied transaction — the new rows exist physically but
// their begin version is beyond the reader's snapshot.
//
// Rows appended outside the MVCC write path (bulk loads, legacy
// tests) have no interval entry and are treated as begin = 0: visible
// at every snapshot. The map pads itself lazily when MVCC writes land
// on a partially tracked table.

#ifndef RELSERVE_STORAGE_MVCC_H_
#define RELSERVE_STORAGE_MVCC_H_

#include <atomic>
#include <cstdint>
#include <shared_mutex>
#include <vector>

#include "common/result.h"

namespace relserve {

using Version = uint64_t;

// end-version sentinel: the row has not been deleted/superseded.
inline constexpr Version kLiveRow = 0;

// Monotonic commit-version source. Allocate() hands out the next
// version; Publish() makes it (and everything below it) visible to
// snapshot pinning. Commits allocate-apply-publish in that order, so
// LatestPublished() always names a fully applied prefix of history.
class VersionClock {
 public:
  Version Allocate() {
    return next_.fetch_add(1, std::memory_order_relaxed);
  }

  void Publish(Version v) {
    Version cur = published_.load(std::memory_order_relaxed);
    while (cur < v && !published_.compare_exchange_weak(
                          cur, v, std::memory_order_release,
                          std::memory_order_relaxed)) {
    }
  }

  Version LatestPublished() const {
    return published_.load(std::memory_order_acquire);
  }

  // Recovery: move both counters past every version found in the log.
  void AdvanceTo(Version v) {
    Version cur = next_.load(std::memory_order_relaxed);
    while (cur < v + 1 && !next_.compare_exchange_weak(
                              cur, v + 1, std::memory_order_relaxed)) {
    }
    Publish(v);
  }

 private:
  std::atomic<Version> next_{1};
  std::atomic<Version> published_{0};
};

// Per-row [begin, end) version intervals for one table, indexed by
// physical row ordinal (insertion order — stable because both storage
// layouts are append-only). Thread-safe: commits append/mark under the
// writer lock, scans evaluate visibility under the reader lock.
class VisibilityMap {
 public:
  // Registers the next appended row with the given begin version.
  void AppendRow(Version begin);

  // Accounts rows that were appended outside the MVCC path: every
  // ordinal below `rows` that is not yet tracked becomes begin = 0
  // (always visible). Called before MVCC appends on mixed tables.
  void PadTo(int64_t rows);

  // Closes a row's interval at `end` (delete, or supersede-by-update).
  // Ordinals beyond the tracked range are padded in first.
  Status MarkDeleted(int64_t row, Version end);

  bool IsVisible(int64_t row, Version snapshot) const;

  // True iff every row in [first, first + count) is visible — the
  // fragment-skip fast path of the columnar scan.
  bool AllVisible(int64_t first, int64_t count, Version snapshot) const;

  // Appends the offsets (relative to `first`) of the visible rows in
  // [first, first + count) to `sel`, ascending.
  void VisibleSelection(int64_t first, int64_t count, Version snapshot,
                        std::vector<int32_t>* sel) const;

  int64_t VisibleCount(int64_t first, int64_t count,
                       Version snapshot) const;

  int64_t tracked_rows() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return static_cast<int64_t>(begin_.size());
  }
  int64_t delete_count() const {
    return deletes_.load(std::memory_order_relaxed);
  }

 private:
  bool VisibleLocked(int64_t row, Version snapshot) const {
    if (row >= static_cast<int64_t>(begin_.size())) return true;
    return begin_[row] <= snapshot &&
           (end_[row] == kLiveRow || end_[row] > snapshot);
  }

  mutable std::shared_mutex mu_;
  std::vector<Version> begin_;
  std::vector<Version> end_;  // kLiveRow = open interval
  // Monotone begin versions let AllVisible answer from the last entry
  // alone; a PadTo after versioned appends breaks the order and drops
  // the map to the per-row path.
  bool monotone_ = true;
  std::atomic<int64_t> deletes_{0};
};

}  // namespace relserve

#endif  // RELSERVE_STORAGE_MVCC_H_
