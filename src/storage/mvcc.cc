#include "storage/mvcc.h"

#include <algorithm>
#include <mutex>
#include <string>

namespace relserve {

void VisibilityMap::AppendRow(Version begin) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (!begin_.empty() && begin_.back() > begin) monotone_ = false;
  begin_.push_back(begin);
  end_.push_back(kLiveRow);
}

void VisibilityMap::PadTo(int64_t rows) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (rows <= static_cast<int64_t>(begin_.size())) return;
  if (!begin_.empty() && begin_.back() > 0) monotone_ = false;
  begin_.resize(rows, 0);
  end_.resize(rows, kLiveRow);
}

Status VisibilityMap::MarkDeleted(int64_t row, Version end) {
  if (row < 0) {
    return Status::InvalidArgument("negative row ordinal " +
                                   std::to_string(row));
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (row >= static_cast<int64_t>(begin_.size())) {
    if (!begin_.empty() && begin_.back() > 0) monotone_ = false;
    begin_.resize(row + 1, 0);
    end_.resize(row + 1, kLiveRow);
  }
  if (end_[row] == kLiveRow || end_[row] > end) end_[row] = end;
  deletes_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

bool VisibilityMap::IsVisible(int64_t row, Version snapshot) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return VisibleLocked(row, snapshot);
}

bool VisibilityMap::AllVisible(int64_t first, int64_t count,
                               Version snapshot) const {
  if (count <= 0) return true;
  std::shared_lock<std::shared_mutex> lock(mu_);
  const int64_t tracked = static_cast<int64_t>(begin_.size());
  if (first >= tracked) return true;  // wholly untracked = bulk rows
  if (deletes_.load(std::memory_order_relaxed) == 0 && monotone_) {
    // begin versions ascend, so the last tracked row of the range
    // bounds them all.
    const int64_t last = std::min(first + count, tracked) - 1;
    return begin_[last] <= snapshot;
  }
  const int64_t hi = std::min(first + count, tracked);
  for (int64_t r = first; r < hi; ++r) {
    if (!VisibleLocked(r, snapshot)) return false;
  }
  return true;
}

void VisibilityMap::VisibleSelection(int64_t first, int64_t count,
                                     Version snapshot,
                                     std::vector<int32_t>* sel) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  for (int64_t r = 0; r < count; ++r) {
    if (VisibleLocked(first + r, snapshot)) {
      sel->push_back(static_cast<int32_t>(r));
    }
  }
}

int64_t VisibilityMap::VisibleCount(int64_t first, int64_t count,
                                    Version snapshot) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  int64_t n = 0;
  for (int64_t r = 0; r < count; ++r) {
    n += VisibleLocked(first + r, snapshot);
  }
  return n;
}

}  // namespace relserve
