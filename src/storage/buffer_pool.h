// BufferPool: fixed-capacity page cache with LRU eviction, pinning,
// and per-frame latching for genuinely concurrent fetches.
//
// The relation-centric architecture inherits the RDBMS's ability to
// operate on data larger than memory (paper Sec. 1, Sec. 7.1): tensor
// blocks live on pages; only the working set is resident; cold pages
// spill to the DiskManager and reload on demand. The pool's
// hit/miss/eviction counters are what the block-size and pool-size
// ablations (A2/A3) report.
//
// Latching protocol (DESIGN.md "Parallel execution model"): a short
// global mutex guards only the page table and frame metadata; all disk
// I/O — victim write-back and page load — happens with the mutex
// dropped while the frame is reserved via its `io_pending` latch.
// Threads that need a latched frame wait on a shared condition
// variable and re-validate the mapping, so parallel block fetches from
// ParallelFor morsels overlap their disk reads instead of serializing
// behind one lock. Counters are maintained under the mutex and each
// Fetch/NewPage contributes exactly one hit or miss and at most the
// evictions that actually occurred.

#ifndef RELSERVE_STORAGE_BUFFER_POOL_H_
#define RELSERVE_STORAGE_BUFFER_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "storage/disk_manager.h"
#include "storage/page.h"

namespace relserve {

struct BufferPoolStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t evictions = 0;
  // Prefetch pipeline accounting: issued counts pages accepted into
  // the background queue, completed counts finished load attempts
  // (including skips), useful counts pins that found a page resident
  // only because a prefetch loaded it. issued == completed once the
  // queue drains, so tests can wait for quiescence.
  int64_t prefetches_issued = 0;
  int64_t prefetches_completed = 0;
  int64_t prefetch_useful = 0;
  // Resilience accounting: prefetch loads that failed (dropped, never
  // fatal — the foreground fetch retries the read itself) and eviction
  // write-backs that failed (the pool retried an alternate victim).
  int64_t prefetch_failed = 0;
  int64_t writeback_failures = 0;

  std::string ToString() const;
};

class BufferPool {
 public:
  // `capacity_pages` frames of kPageSize each; the pool never holds
  // more than capacity_pages * kPageSize bytes of page data.
  BufferPool(DiskManager* disk, int64_t capacity_pages);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  // Stops the background prefetcher (if it ever started) and joins it.
  ~BufferPool();

  // Pins an existing page and returns its frame data. The caller must
  // Unpin with the same id exactly once per fetch. Safe to call from
  // many threads; concurrent fetches of distinct pages overlap their
  // disk reads, and concurrent fetches of the same page perform one
  // load (one miss) while the others wait and count hits.
  // `prefetch_hit`, when non-null, is set to whether this pin was
  // served by a page the prefetcher loaded (first pin only).
  Result<char*> FetchPage(PageId page_id,
                          bool* prefetch_hit = nullptr);

  // Asynchronously loads `page_id` into a frame without pinning it, so
  // a later FetchPage hits instead of stalling on disk. Best effort:
  // a page that is already resident, already queued, or unservable
  // (every frame pinned, queue full) is skipped. Returns true iff the
  // page was accepted into the prefetch queue. The actual I/O runs on
  // a lazily-started background thread; the per-frame io_pending
  // latch keeps the load invisible to eviction, fetches, and deletes
  // until it completes.
  bool Prefetch(PageId page_id);

  // Allocates a new zeroed page, pinned. `out_id` receives the id.
  Result<char*> NewPage(PageId* out_id);

  // Releases a pin; `dirty` marks the frame for write-back on
  // eviction/flush.
  Status UnpinPage(PageId page_id, bool dirty);

  // Writes back every dirty resident page.
  Status FlushAll();

  // Drops a page: discards any resident (even dirty) copy and returns
  // the id to the disk manager's free list. The page must be
  // unpinned. Used when a tensor relation is dropped so its pages are
  // recycled instead of bloating the spill file.
  Status DeletePage(PageId page_id);

  int64_t capacity_pages() const { return capacity_pages_; }
  int64_t capacity_bytes() const { return capacity_pages_ * kPageSize; }
  BufferPoolStats stats() const;
  DiskManager* disk() { return disk_; }

 private:
  struct Frame {
    PageId page_id = kInvalidPageId;
    std::unique_ptr<char[]> data;
    int pin_count = 0;
    bool dirty = false;
    // Per-frame latch: the frame is reserved for I/O (load, zeroing,
    // or victim write-back) with mu_ dropped. A latched frame is never
    // evicted, fetched, or deleted; waiters sleep on io_cv_ and
    // re-validate the page table afterwards.
    bool io_pending = false;
    // Loaded by the prefetcher and not yet pinned; the first pin
    // counts it as a useful prefetch and clears the flag.
    bool prefetched = false;
    uint64_t last_used = 0;  // LRU clock
  };

  // Reserves a frame for the caller (io_pending set), evicting an
  // unpinned unlatched page if needed. Called with `lock` held; drops
  // and reacquires it around the victim's write-back, so the caller
  // must re-validate the page table afterwards.
  //
  // A victim whose write-back fails is left dirty and resident (its
  // latch cleared — no data is lost, no frame is wedged) and the next
  // LRU candidate is tried; only when every candidate fails does the
  // reservation surface Status::Unavailable. The "bufferpool.evict"
  // failpoint injects a write-back failure for the chosen victim.
  Result<int64_t> ReserveFrame(std::unique_lock<std::mutex>& lock);

  // Returns a reserved-but-unused frame to the free state. Called with
  // mu_ held.
  void ReleaseFrameLocked(int64_t idx);

  // Lazily spawns the prefetch worker. Called with mu_ held.
  void EnsurePrefetcherLocked();

  // The background thread: drains prefetch_queue_, loading each page
  // into an unpinned frame under the io_pending latch.
  void PrefetchLoop();

  // Bound on queued-but-not-loaded prefetches; beyond it Prefetch
  // sheds (the scan will just fault the page in normally).
  static constexpr size_t kMaxQueuedPrefetches = 256;

  DiskManager* const disk_;
  const int64_t capacity_pages_;
  mutable std::mutex mu_;
  std::condition_variable io_cv_;  // signaled when any latch clears
  std::vector<Frame> frames_;
  std::unordered_map<PageId, int64_t> page_table_;  // page -> frame idx
  uint64_t clock_ = 0;
  BufferPoolStats stats_;

  // Prefetch machinery, all guarded by mu_ except the thread handle.
  std::deque<PageId> prefetch_queue_;
  std::unordered_set<PageId> prefetch_queued_;  // dedupe + delete purge
  std::condition_variable prefetch_cv_;
  bool prefetch_stop_ = false;
  std::thread prefetcher_;
};

// RAII pin guard: unpins on scope exit.
class PageGuard {
 public:
  PageGuard(BufferPool* pool, PageId page_id, char* data)
      : pool_(pool), page_id_(page_id), data_(data) {}
  ~PageGuard() {
    if (pool_ != nullptr) pool_->UnpinPage(page_id_, dirty_);
  }

  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  PageGuard(PageGuard&& other) noexcept { *this = std::move(other); }
  PageGuard& operator=(PageGuard&& other) noexcept {
    pool_ = other.pool_;
    page_id_ = other.page_id_;
    data_ = other.data_;
    dirty_ = other.dirty_;
    other.pool_ = nullptr;
    return *this;
  }

  char* data() { return data_; }
  const char* data() const { return data_; }
  PageId page_id() const { return page_id_; }
  void MarkDirty() { dirty_ = true; }

 private:
  BufferPool* pool_ = nullptr;
  PageId page_id_ = kInvalidPageId;
  char* data_ = nullptr;
  bool dirty_ = false;
};

}  // namespace relserve

#endif  // RELSERVE_STORAGE_BUFFER_POOL_H_
