// ColumnarTable: fragment-partitioned, column-major table storage.
//
// A table is split into fragments — horizontal partitions of
// `fragment_rows` rows (the morsel unit of fragment-parallel scans).
// Each sealed fragment stores one page stream per column through the
// BufferPool, so column streams inherit the CRC32C page checksums,
// quarantine-on-corruption, LRU eviction and prefetching the row heap
// already relies on. A scan that projects two of ten columns touches
// two page streams, not ten.
//
// Column stream encoding (little-endian), one stream per
// (fragment, column):
//
//   [u8 value_type][i64 rows][u8 has_validity]
//   [(rows+7)/8 validity bytes]            when has_validity
//   payload:
//     kInt64 / kFloat64:  rows * 8 bytes, fixed width
//     kString:            [i64 total_bytes][u32 len]*rows [bytes...]
//     kFloatVector:       [i64 total_elems][u32 n]*rows [floats...]
//
// The open tail fragment accumulates appends in memory (a
// ColumnBatch) and seals to pages when it reaches `fragment_rows`;
// scans see it as the last fragment. Appends are single-writer, but
// scanning concurrently with appends is supported: appends and seals
// run under the writer half of an internal shared_mutex, fragment
// reads under the reader half, so a scan observes either the
// pre-append or post-append tail, never a torn one. Snapshot
// consistency on top of that is the VisibilityMap's job — rows
// committed after a reader pinned its snapshot are physically present
// but filtered out (DESIGN.md "Durability & snapshot isolation").

#ifndef RELSERVE_STORAGE_COLUMN_STORE_H_
#define RELSERVE_STORAGE_COLUMN_STORE_H_

#include <atomic>
#include <cstdint>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "relational/column_batch.h"
#include "relational/row.h"
#include "relational/schema.h"
#include "storage/buffer_pool.h"

namespace relserve {

class ColumnarTable {
 public:
  // ~1-4K rows per batch keeps a chunk of doubles inside L2 while
  // amortizing per-batch dispatch; 4096 doubles = 32 KiB = half a page.
  static constexpr int64_t kDefaultFragmentRows = 4096;

  ColumnarTable(BufferPool* pool, Schema schema,
                int64_t fragment_rows = kDefaultFragmentRows);

  ColumnarTable(const ColumnarTable&) = delete;
  ColumnarTable& operator=(const ColumnarTable&) = delete;

  // Appends one row (arity/types must match the schema); seals the
  // tail fragment automatically when it fills.
  Status AppendRow(const Row& row);

  // Column-wise append; may span multiple fragments.
  Status AppendBatch(const ColumnBatch& batch);

  // Appends one all-null row (exercises the validity bitmaps; the
  // Value layer has no NULL, so these read back as type defaults).
  Status AppendNullRow();

  // Flushes the open tail fragment to pages. Empty tails are skipped
  // unless `allow_empty` (tests use empty sealed fragments to probe
  // scan edge cases).
  Status SealActiveFragment(bool allow_empty = false);

  const Schema& schema() const { return schema_; }
  int64_t num_rows() const {
    return num_rows_.load(std::memory_order_acquire);
  }
  int64_t fragment_rows() const { return fragment_rows_; }
  // Sealed fragments plus the open tail when it holds rows.
  int64_t num_fragments() const;
  int64_t FragmentRowCount(int64_t f) const;
  // First table row ordinal of fragment `f` — the base that maps a
  // within-fragment offset to the VisibilityMap's row index.
  int64_t FragmentStartRow(int64_t f) const;
  // Encoded bytes across sealed column streams.
  int64_t sealed_bytes() const {
    return sealed_bytes_.load(std::memory_order_relaxed);
  }

  // Reads fragment `f`, restricted to `columns` (table column
  // indices, ascending; nullptr = all). The returned batch's chunks
  // are positional over the requested columns. Fails with the
  // underlying storage error — DataLoss once a column page is
  // checksum-quarantined — and trips the "columnar.scan" failpoint.
  Result<ColumnBatch> ReadFragment(
      int64_t f, const std::vector<int>* columns = nullptr) const;

 private:
  struct ColumnStream {
    std::vector<PageId> pages;
    int64_t bytes = 0;  // encoded length
  };
  struct Fragment {
    int64_t rows = 0;
    int64_t start = 0;  // first table row ordinal in this fragment
    std::vector<ColumnStream> columns;
  };

  Status WriteStream(const std::string& encoded, ColumnStream* out);
  Status ReadStream(const ColumnStream& stream, std::string* out) const;

  // Callers hold mu_ exclusively.
  Status SealActiveLocked(bool allow_empty);
  int64_t NumFragmentsLocked() const {
    return static_cast<int64_t>(fragments_.size()) +
           (active_.num_rows > 0 ? 1 : 0);
  }
  int64_t SealedRowsLocked() const {
    return fragments_.empty()
               ? 0
               : fragments_.back().start + fragments_.back().rows;
  }

  BufferPool* const pool_;
  const Schema schema_;
  const int64_t fragment_rows_;
  // Appends/seals exclusive, fragment reads shared: a reader sees the
  // tail either before or after a concurrent append, never mid-copy.
  mutable std::shared_mutex mu_;
  std::vector<Fragment> fragments_;
  ColumnBatch active_;  // open tail, not yet on pages
  std::atomic<int64_t> num_rows_{0};
  std::atomic<int64_t> sealed_bytes_{0};
};

}  // namespace relserve

#endif  // RELSERVE_STORAGE_COLUMN_STORE_H_
