// ColumnarTable: fragment-partitioned, column-major table storage.
//
// A table is split into fragments — horizontal partitions of
// `fragment_rows` rows (the morsel unit of fragment-parallel scans).
// Each sealed fragment stores one page stream per column through the
// BufferPool, so column streams inherit the CRC32C page checksums,
// quarantine-on-corruption, LRU eviction and prefetching the row heap
// already relies on. A scan that projects two of ten columns touches
// two page streams, not ten.
//
// Column stream encoding (little-endian), one stream per
// (fragment, column):
//
//   [u8 value_type][i64 rows][u8 has_validity]
//   [(rows+7)/8 validity bytes]            when has_validity
//   payload:
//     kInt64 / kFloat64:  rows * 8 bytes, fixed width
//     kString:            [i64 total_bytes][u32 len]*rows [bytes...]
//     kFloatVector:       [i64 total_elems][u32 n]*rows [floats...]
//
// The open tail fragment accumulates appends in memory (a
// ColumnBatch) and seals to pages when it reaches `fragment_rows`;
// scans see it as the last fragment. Appends are single-writer;
// concurrent scans of sealed fragments are safe (the BufferPool is
// thread-safe and fragment metadata is immutable once sealed), but
// scanning concurrently with appends is not supported yet — that is
// the serve-while-ingest work this layout exists to unlock.

#ifndef RELSERVE_STORAGE_COLUMN_STORE_H_
#define RELSERVE_STORAGE_COLUMN_STORE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "relational/column_batch.h"
#include "relational/row.h"
#include "relational/schema.h"
#include "storage/buffer_pool.h"

namespace relserve {

class ColumnarTable {
 public:
  // ~1-4K rows per batch keeps a chunk of doubles inside L2 while
  // amortizing per-batch dispatch; 4096 doubles = 32 KiB = half a page.
  static constexpr int64_t kDefaultFragmentRows = 4096;

  ColumnarTable(BufferPool* pool, Schema schema,
                int64_t fragment_rows = kDefaultFragmentRows);

  ColumnarTable(const ColumnarTable&) = delete;
  ColumnarTable& operator=(const ColumnarTable&) = delete;

  // Appends one row (arity/types must match the schema); seals the
  // tail fragment automatically when it fills.
  Status AppendRow(const Row& row);

  // Column-wise append; may span multiple fragments.
  Status AppendBatch(const ColumnBatch& batch);

  // Appends one all-null row (exercises the validity bitmaps; the
  // Value layer has no NULL, so these read back as type defaults).
  Status AppendNullRow();

  // Flushes the open tail fragment to pages. Empty tails are skipped
  // unless `allow_empty` (tests use empty sealed fragments to probe
  // scan edge cases).
  Status SealActiveFragment(bool allow_empty = false);

  const Schema& schema() const { return schema_; }
  int64_t num_rows() const { return num_rows_; }
  int64_t fragment_rows() const { return fragment_rows_; }
  // Sealed fragments plus the open tail when it holds rows.
  int64_t num_fragments() const;
  int64_t FragmentRowCount(int64_t f) const;
  // Encoded bytes across sealed column streams.
  int64_t sealed_bytes() const { return sealed_bytes_; }

  // Reads fragment `f`, restricted to `columns` (table column
  // indices, ascending; nullptr = all). The returned batch's chunks
  // are positional over the requested columns. Fails with the
  // underlying storage error — DataLoss once a column page is
  // checksum-quarantined — and trips the "columnar.scan" failpoint.
  Result<ColumnBatch> ReadFragment(
      int64_t f, const std::vector<int>* columns = nullptr) const;

 private:
  struct ColumnStream {
    std::vector<PageId> pages;
    int64_t bytes = 0;  // encoded length
  };
  struct Fragment {
    int64_t rows = 0;
    std::vector<ColumnStream> columns;
  };

  Status WriteStream(const std::string& encoded, ColumnStream* out);
  Status ReadStream(const ColumnStream& stream, std::string* out) const;

  BufferPool* const pool_;
  const Schema schema_;
  const int64_t fragment_rows_;
  std::vector<Fragment> fragments_;
  ColumnBatch active_;  // open tail, not yet on pages
  int64_t num_rows_ = 0;
  int64_t sealed_bytes_ = 0;
};

}  // namespace relserve

#endif  // RELSERVE_STORAGE_COLUMN_STORE_H_
