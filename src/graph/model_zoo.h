// The paper's evaluation models (Tables 1 and 2), buildable at a
// configurable scale.
//
// Scale 1.0 reproduces the paper's exact layer geometry. The default
// benchmark scale shrinks the two large models (Amazon-14k-FC,
// LandCover) proportionally so the suite runs on a laptop-class
// sandbox; the optimizer thresholds are scaled the same way in the
// benches, which preserves every representation decision and crossover
// (see EXPERIMENTS.md).

#ifndef RELSERVE_GRAPH_MODEL_ZOO_H_
#define RELSERVE_GRAPH_MODEL_ZOO_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "graph/model.h"

namespace relserve {
namespace zoo {

// Table 1 — FC models (one hidden layer): name, dims {in, hidden, out}.
struct FcSpec {
  std::string name;
  std::vector<int64_t> dims;
};

// Table 2 — conv models: name, input [h, w, c], kernel
// [out_c, kh, kw] (in_c follows the input), stride 1.
struct ConvSpec {
  std::string name;
  int64_t image_h = 0, image_w = 0, image_c = 0;
  int64_t out_channels = 0, kernel_h = 1, kernel_w = 1;
};

// The paper's Table 1 at `scale` (scales Amazon-14k's feature and
// output widths; the small fraud/encoder models are already tiny and
// are never scaled).
std::vector<FcSpec> Table1FcSpecs(double scale);

// The paper's Table 2 at `scale` (scales LandCover's image size and
// kernel count; DeepBench-CONV1 is kept exact).
std::vector<ConvSpec> Table2ConvSpecs(double scale);

Result<Model> BuildFromSpec(const FcSpec& spec, uint64_t seed,
                            MemoryTracker* tracker = nullptr);
Result<Model> BuildFromSpec(const ConvSpec& spec, uint64_t seed,
                            MemoryTracker* tracker = nullptr);

// Sec. 7.2.2 models: the 2-conv/2-fc MNIST CNN and the
// 128/1024/2048/64 MNIST FFNN (input 784, output 10).
Result<Model> BuildCachingCnn(uint64_t seed,
                              MemoryTracker* tracker = nullptr);
Result<Model> BuildCachingFfnn(uint64_t seed,
                               MemoryTracker* tracker = nullptr);

// Sec. 7.2.1 model: FFNN 968 -> 256 -> 2 over the joined Bosch
// features.
Result<Model> BuildBoschFfnn(int64_t total_features, uint64_t seed,
                             MemoryTracker* tracker = nullptr);

}  // namespace zoo
}  // namespace relserve

#endif  // RELSERVE_GRAPH_MODEL_ZOO_H_
