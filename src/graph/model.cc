#include "graph/model.h"

#include <cmath>

#include "common/random.h"

namespace relserve {

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kInput:
      return "Input";
    case OpKind::kMatMul:
      return "MatMul";
    case OpKind::kBiasAdd:
      return "BiasAdd";
    case OpKind::kRelu:
      return "Relu";
    case OpKind::kSoftmax:
      return "Softmax";
    case OpKind::kConv2D:
      return "Conv2D";
    case OpKind::kMaxPool:
      return "MaxPool";
    case OpKind::kFlatten:
      return "Flatten";
  }
  return "?";
}

int Model::AddNode(OpKind kind, std::string weight_name, int64_t stride,
                   int input) {
  Node node;
  node.id = static_cast<int>(nodes_.size());
  node.kind = kind;
  node.input = (input == -2) ? node.id - 1 : input;
  node.weight_name = std::move(weight_name);
  node.stride = stride;
  node.name = std::string(OpKindName(kind)) + "_" +
              std::to_string(node.id);
  RELSERVE_CHECK(kind != OpKind::kInput || nodes_.empty())
      << "Input must be the first node";
  RELSERVE_CHECK(kind == OpKind::kInput || node.input >= 0)
      << "non-input node needs a producer";
  nodes_.push_back(node);
  return node.id;
}

Status Model::AddWeight(const std::string& name, Tensor weight) {
  if (weights_.count(name) > 0) {
    return Status::AlreadyExists("weight '" + name + "'");
  }
  weights_.emplace(name, std::move(weight));
  return Status::OK();
}

Result<const Tensor*> Model::GetWeight(const std::string& name) const {
  auto it = weights_.find(name);
  if (it == weights_.end()) {
    return Status::NotFound("weight '" + name + "'");
  }
  return &it->second;
}

Result<Tensor*> Model::GetMutableWeight(const std::string& name) {
  auto it = weights_.find(name);
  if (it == weights_.end()) {
    return Status::NotFound("weight '" + name + "'");
  }
  return &it->second;
}

int64_t Model::TotalWeightBytes() const {
  int64_t total = 0;
  for (const auto& [name, w] : weights_) total += w.ByteSize();
  return total;
}

Result<std::vector<Shape>> Model::InferShapes(int64_t batch_size) const {
  std::vector<Shape> shapes(nodes_.size());
  for (const Node& node : nodes_) {
    switch (node.kind) {
      case OpKind::kInput: {
        std::vector<int64_t> dims = {batch_size};
        for (int64_t d : sample_shape_.dims()) dims.push_back(d);
        shapes[node.id] = Shape(std::move(dims));
        break;
      }
      case OpKind::kMatMul: {
        const Shape& in = shapes[node.input];
        if (in.ndim() != 2) {
          return Status::InvalidArgument("MatMul input must be rank-2");
        }
        RELSERVE_ASSIGN_OR_RETURN(const Tensor* w,
                                  GetWeight(node.weight_name));
        if (w->shape().ndim() != 2 ||
            w->shape().dim(1) != in.dim(1)) {
          return Status::InvalidArgument(
              "MatMul weight " + w->shape().ToString() +
              " incompatible with input " + in.ToString());
        }
        shapes[node.id] = Shape{in.dim(0), w->shape().dim(0)};
        break;
      }
      case OpKind::kBiasAdd:
      case OpKind::kRelu:
      case OpKind::kSoftmax:
        shapes[node.id] = shapes[node.input];
        break;
      case OpKind::kConv2D: {
        const Shape& in = shapes[node.input];
        if (in.ndim() != 4) {
          return Status::InvalidArgument("Conv2D input must be rank-4");
        }
        RELSERVE_ASSIGN_OR_RETURN(const Tensor* w,
                                  GetWeight(node.weight_name));
        const int64_t out_h =
            (in.dim(1) - w->shape().dim(1)) / node.stride + 1;
        const int64_t out_w =
            (in.dim(2) - w->shape().dim(2)) / node.stride + 1;
        shapes[node.id] =
            Shape{in.dim(0), out_h, out_w, w->shape().dim(0)};
        break;
      }
      case OpKind::kMaxPool: {
        const Shape& in = shapes[node.input];
        if (in.ndim() != 4) {
          return Status::InvalidArgument("MaxPool input must be rank-4");
        }
        shapes[node.id] =
            Shape{in.dim(0), in.dim(1) / 2, in.dim(2) / 2, in.dim(3)};
        break;
      }
      case OpKind::kFlatten: {
        const Shape& in = shapes[node.input];
        shapes[node.id] =
            Shape{in.dim(0), in.NumElements() / in.dim(0)};
        break;
      }
    }
  }
  return shapes;
}

Result<double> Model::EstimateFlops(int64_t batch_size) const {
  double flops = 0.0;
  for (const Node& node : nodes_) {
    RELSERVE_ASSIGN_OR_RETURN(double node_flops,
                              EstimateNodeFlops(node.id, batch_size));
    flops += node_flops;
  }
  return flops;
}

Result<double> Model::EstimateNodeFlops(int node_id,
                                        int64_t batch_size) const {
  RELSERVE_ASSIGN_OR_RETURN(std::vector<Shape> shapes,
                            InferShapes(batch_size));
  const Node& node = nodes_[node_id];
  switch (node.kind) {
    case OpKind::kMatMul: {
      RELSERVE_ASSIGN_OR_RETURN(const Tensor* w,
                                GetWeight(node.weight_name));
      const Shape& in = shapes[node.input];
      return 2.0 * in.dim(0) * in.dim(1) * w->shape().dim(0);
    }
    case OpKind::kConv2D: {
      RELSERVE_ASSIGN_OR_RETURN(const Tensor* w,
                                GetWeight(node.weight_name));
      const Shape& out = shapes[node.id];
      // Each output element is a dot product over kh*kw*in_c.
      return 2.0 * out.NumElements() * w->shape().dim(1) *
             w->shape().dim(2) * w->shape().dim(3);
    }
    default:
      return static_cast<double>(shapes[node.id].NumElements());
  }
}

std::string Model::ToString() const {
  std::string out = "Model " + name_ + " (sample " +
                    sample_shape_.ToString() + ")\n";
  for (const Node& node : nodes_) {
    out += "  #" + std::to_string(node.id) + " " + OpKindName(node.kind);
    if (!node.weight_name.empty()) {
      out += " [" + node.weight_name;
      auto w = GetWeight(node.weight_name);
      if (w.ok()) out += " " + (*w)->shape().ToString();
      out += "]";
    }
    if (node.input >= 0) out += " <- #" + std::to_string(node.input);
    out += "\n";
  }
  return out;
}

namespace {

Result<Tensor> RandomWeight(Shape shape, int64_t fan_in, Rng* rng,
                            MemoryTracker* tracker) {
  RELSERVE_ASSIGN_OR_RETURN(Tensor w,
                            Tensor::Create(std::move(shape), tracker));
  const float scale = 1.0f / std::sqrt(static_cast<float>(fan_in));
  float* data = w.data();
  for (int64_t i = 0; i < w.NumElements(); ++i) {
    data[i] = rng->Normal(0.0f, scale);
  }
  return w;
}

}  // namespace

Result<Model> BuildFFNN(const std::string& name,
                        const std::vector<int64_t>& dims, uint64_t seed,
                        MemoryTracker* tracker) {
  if (dims.size() < 2) {
    return Status::InvalidArgument("FFNN needs at least in/out dims");
  }
  Rng rng(seed);
  Model model(name, Shape{dims[0]});
  model.AddNode(OpKind::kInput);
  for (size_t layer = 0; layer + 1 < dims.size(); ++layer) {
    const int64_t in_dim = dims[layer];
    const int64_t out_dim = dims[layer + 1];
    const std::string w_name = "w" + std::to_string(layer);
    const std::string b_name = "b" + std::to_string(layer);
    RELSERVE_ASSIGN_OR_RETURN(
        Tensor w,
        RandomWeight(Shape{out_dim, in_dim}, in_dim, &rng, tracker));
    RELSERVE_ASSIGN_OR_RETURN(
        Tensor b, RandomWeight(Shape{out_dim}, in_dim, &rng, tracker));
    RELSERVE_RETURN_NOT_OK(model.AddWeight(w_name, std::move(w)));
    RELSERVE_RETURN_NOT_OK(model.AddWeight(b_name, std::move(b)));
    model.AddNode(OpKind::kMatMul, w_name);
    model.AddNode(OpKind::kBiasAdd, b_name);
    if (layer + 2 < dims.size()) {
      model.AddNode(OpKind::kRelu);
    } else {
      model.AddNode(OpKind::kSoftmax);
    }
  }
  return model;
}

Result<Model> BuildCNN(const std::string& name, Shape sample_shape,
                       const std::vector<ConvLayerSpec>& conv_layers,
                       const std::vector<int64_t>& fc_dims,
                       uint64_t seed, MemoryTracker* tracker) {
  if (sample_shape.ndim() != 3) {
    return Status::InvalidArgument("CNN sample shape must be [h, w, c]");
  }
  Rng rng(seed);
  Model model(name, sample_shape);
  model.AddNode(OpKind::kInput);
  int64_t h = sample_shape.dim(0);
  int64_t w = sample_shape.dim(1);
  int64_t c = sample_shape.dim(2);
  for (size_t layer = 0; layer < conv_layers.size(); ++layer) {
    const ConvLayerSpec& spec = conv_layers[layer];
    const std::string k_name = "conv" + std::to_string(layer);
    const int64_t fan_in = spec.kernel_h * spec.kernel_w * c;
    RELSERVE_ASSIGN_OR_RETURN(
        Tensor kernel,
        RandomWeight(Shape{spec.out_channels, spec.kernel_h,
                           spec.kernel_w, c},
                     fan_in, &rng, tracker));
    RELSERVE_RETURN_NOT_OK(model.AddWeight(k_name, std::move(kernel)));
    model.AddNode(OpKind::kConv2D, k_name, spec.stride);
    h = (h - spec.kernel_h) / spec.stride + 1;
    w = (w - spec.kernel_w) / spec.stride + 1;
    c = spec.out_channels;
    if (spec.relu) model.AddNode(OpKind::kRelu);
    if (spec.maxpool) {
      model.AddNode(OpKind::kMaxPool);
      h /= 2;
      w /= 2;
    }
  }
  if (!fc_dims.empty()) {
    model.AddNode(OpKind::kFlatten);
    int64_t in_dim = h * w * c;
    for (size_t layer = 0; layer < fc_dims.size(); ++layer) {
      const int64_t out_dim = fc_dims[layer];
      const std::string w_name = "fc" + std::to_string(layer);
      const std::string b_name = "fcb" + std::to_string(layer);
      RELSERVE_ASSIGN_OR_RETURN(
          Tensor weight,
          RandomWeight(Shape{out_dim, in_dim}, in_dim, &rng, tracker));
      RELSERVE_ASSIGN_OR_RETURN(
          Tensor bias,
          RandomWeight(Shape{out_dim}, in_dim, &rng, tracker));
      RELSERVE_RETURN_NOT_OK(model.AddWeight(w_name, std::move(weight)));
      RELSERVE_RETURN_NOT_OK(model.AddWeight(b_name, std::move(bias)));
      model.AddNode(OpKind::kMatMul, w_name);
      model.AddNode(OpKind::kBiasAdd, b_name);
      if (layer + 1 < fc_dims.size()) {
        model.AddNode(OpKind::kRelu);
      } else {
        model.AddNode(OpKind::kSoftmax);
      }
      in_dim = out_dim;
    }
  }
  return model;
}

}  // namespace relserve
