#include "graph/model_zoo.h"

#include <algorithm>
#include <cmath>

namespace relserve {
namespace zoo {

namespace {

int64_t Scaled(int64_t value, double scale, int64_t min_value = 1) {
  return std::max<int64_t>(
      min_value, static_cast<int64_t>(std::llround(value * scale)));
}

}  // namespace

std::vector<FcSpec> Table1FcSpecs(double scale) {
  return {
      {"Fraud-FC-256", {28, 256, 2}},
      {"Fraud-FC-512", {28, 512, 2}},
      {"Encoder-FC", {76, 3072, 768}},
      {"Amazon-14k-FC",
       {Scaled(597540, scale), 1024, Scaled(14588, scale)}},
  };
}

std::vector<ConvSpec> Table2ConvSpecs(double scale) {
  // LandCover scales by sqrt in each image dimension so pixel count
  // (and thus the im2col matrix height) scales linearly with `scale`.
  const double side = std::sqrt(scale);
  return {
      {"DeepBench-CONV1", 112, 112, 64, 64, 1, 1},
      {"LandCover", Scaled(2500, side), Scaled(2500, side), 3,
       Scaled(2048, scale), 1, 1},
  };
}

Result<Model> BuildFromSpec(const FcSpec& spec, uint64_t seed,
                            MemoryTracker* tracker) {
  return BuildFFNN(spec.name, spec.dims, seed, tracker);
}

Result<Model> BuildFromSpec(const ConvSpec& spec, uint64_t seed,
                            MemoryTracker* tracker) {
  ConvLayerSpec layer;
  layer.out_channels = spec.out_channels;
  layer.kernel_h = spec.kernel_h;
  layer.kernel_w = spec.kernel_w;
  layer.stride = 1;
  layer.relu = true;
  layer.maxpool = false;
  return BuildCNN(spec.name,
                  Shape{spec.image_h, spec.image_w, spec.image_c},
                  {layer}, /*fc_dims=*/{}, seed, tracker);
}

Result<Model> BuildCachingCnn(uint64_t seed, MemoryTracker* tracker) {
  // Paper Sec. 7.2.2: conv 32x3x3, conv 16x3x3, fc 64, fc 10 on MNIST.
  ConvLayerSpec conv1{/*out_channels=*/32, 3, 3, /*stride=*/1,
                      /*relu=*/true, /*maxpool=*/true};
  ConvLayerSpec conv2{/*out_channels=*/16, 3, 3, /*stride=*/1,
                      /*relu=*/true, /*maxpool=*/true};
  return BuildCNN("Caching-CNN", Shape{28, 28, 1}, {conv1, conv2},
                  {64, 10}, seed, tracker);
}

Result<Model> BuildCachingFfnn(uint64_t seed, MemoryTracker* tracker) {
  // Paper Sec. 7.2.2: four FC layers 128/1024/2048/64 then 10 classes.
  return BuildFFNN("Caching-FFNN", {784, 128, 1024, 2048, 64, 10}, seed,
                   tracker);
}

Result<Model> BuildBoschFfnn(int64_t total_features, uint64_t seed,
                             MemoryTracker* tracker) {
  return BuildFFNN("Bosch-FFNN", {total_features, 256, 2}, seed,
                   tracker);
}

}  // namespace zoo
}  // namespace relserve
