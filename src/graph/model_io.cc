#include "graph/model_io.h"

#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

namespace relserve {

namespace {

constexpr char kMagic[4] = {'R', 'S', 'L', 'V'};
constexpr uint32_t kVersion = 1;

class FileWriter {
 public:
  explicit FileWriter(const std::string& path)
      : file_(std::fopen(path.c_str(), "wb")) {}
  ~FileWriter() {
    if (file_ != nullptr) std::fclose(file_);
  }
  bool ok() const { return file_ != nullptr && !failed_; }

  template <typename T>
  void Write(T v) {
    if (ok() && std::fwrite(&v, sizeof(T), 1, file_) != 1) failed_ = true;
  }
  void WriteBytes(const void* data, size_t n) {
    if (ok() && n > 0 && std::fwrite(data, 1, n, file_) != n) {
      failed_ = true;
    }
  }
  void WriteString(const std::string& s) {
    Write<uint32_t>(static_cast<uint32_t>(s.size()));
    WriteBytes(s.data(), s.size());
  }

 private:
  std::FILE* file_;
  bool failed_ = false;
};

class FileReader {
 public:
  explicit FileReader(const std::string& path)
      : file_(std::fopen(path.c_str(), "rb")) {}
  ~FileReader() {
    if (file_ != nullptr) std::fclose(file_);
  }
  bool ok() const { return file_ != nullptr && !failed_; }

  template <typename T>
  T Read() {
    T v{};
    if (ok() && std::fread(&v, sizeof(T), 1, file_) != 1) failed_ = true;
    return v;
  }
  void ReadBytes(void* data, size_t n) {
    if (ok() && n > 0 && std::fread(data, 1, n, file_) != n) {
      failed_ = true;
    }
  }
  std::string ReadString() {
    const uint32_t len = Read<uint32_t>();
    if (!ok() || len > (1u << 20)) {
      failed_ = true;
      return "";
    }
    std::string s(len, '\0');
    ReadBytes(s.data(), len);
    return s;
  }

 private:
  std::FILE* file_;
  bool failed_ = false;
};

}  // namespace

Status SaveModel(const Model& model, const std::string& path) {
  FileWriter out(path);
  if (!out.ok()) return Status::IOError("cannot open " + path);
  out.WriteBytes(kMagic, sizeof(kMagic));
  out.Write<uint32_t>(kVersion);
  out.WriteString(model.name());
  out.Write<uint32_t>(static_cast<uint32_t>(model.sample_shape().ndim()));
  for (int64_t d : model.sample_shape().dims()) out.Write<int64_t>(d);
  out.Write<uint32_t>(static_cast<uint32_t>(model.nodes().size()));
  for (const Node& node : model.nodes()) {
    out.Write<uint8_t>(static_cast<uint8_t>(node.kind));
    out.Write<int32_t>(node.input);
    out.Write<int64_t>(node.stride);
    out.WriteString(node.weight_name);
  }
  out.Write<uint32_t>(static_cast<uint32_t>(model.weights().size()));
  for (const auto& [name, weight] : model.weights()) {
    out.WriteString(name);
    out.Write<uint32_t>(static_cast<uint32_t>(weight.shape().ndim()));
    for (int64_t d : weight.shape().dims()) out.Write<int64_t>(d);
    out.WriteBytes(weight.data(), weight.ByteSize());
  }
  if (!out.ok()) return Status::IOError("write failure for " + path);
  return Status::OK();
}

Result<Model> LoadModel(const std::string& path, MemoryTracker* tracker) {
  FileReader in(path);
  if (!in.ok()) return Status::IOError("cannot open " + path);
  char magic[4];
  in.ReadBytes(magic, sizeof(magic));
  if (!in.ok() || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::IOError(path + " is not a relserve model");
  }
  const uint32_t version = in.Read<uint32_t>();
  if (version != kVersion) {
    return Status::IOError("unsupported model version " +
                           std::to_string(version));
  }
  const std::string name = in.ReadString();
  const uint32_t sample_ndim = in.Read<uint32_t>();
  std::vector<int64_t> sample_dims(sample_ndim);
  for (uint32_t i = 0; i < sample_ndim; ++i) {
    sample_dims[i] = in.Read<int64_t>();
  }
  Model model(name, Shape(std::move(sample_dims)));

  const uint32_t num_nodes = in.Read<uint32_t>();
  for (uint32_t i = 0; i < num_nodes && in.ok(); ++i) {
    const OpKind kind = static_cast<OpKind>(in.Read<uint8_t>());
    const int32_t input = in.Read<int32_t>();
    const int64_t stride = in.Read<int64_t>();
    const std::string weight_name = in.ReadString();
    model.AddNode(kind, weight_name, stride, input);
  }

  const uint32_t num_weights = in.Read<uint32_t>();
  for (uint32_t i = 0; i < num_weights && in.ok(); ++i) {
    const std::string w_name = in.ReadString();
    const uint32_t ndim = in.Read<uint32_t>();
    std::vector<int64_t> dims(ndim);
    for (uint32_t d = 0; d < ndim; ++d) dims[d] = in.Read<int64_t>();
    RELSERVE_ASSIGN_OR_RETURN(
        Tensor weight, Tensor::Create(Shape(std::move(dims)), tracker));
    in.ReadBytes(weight.data(), weight.ByteSize());
    RELSERVE_RETURN_NOT_OK(model.AddWeight(w_name, std::move(weight)));
  }
  if (!in.ok()) return Status::IOError("truncated model file " + path);
  return model;
}

}  // namespace relserve
