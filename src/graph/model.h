// Model graph IR (paper Sec. 2): a model UDF lowered to a DAG of
// linear-algebra operators. Each node is one tensor operator; the
// adaptive optimizer walks this graph, estimates per-operator memory,
// and picks a representation (UDF-centric or relation-centric) per
// node — or the whole model is shipped to the external runtime
// (DL-centric).

#ifndef RELSERVE_GRAPH_MODEL_H_
#define RELSERVE_GRAPH_MODEL_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "tensor/tensor.h"

namespace relserve {

enum class OpKind {
  kInput,    // the batched feature tensor
  kMatMul,   // x * W^T with weight W of shape [out, in]
  kBiasAdd,  // x + bias (rank-1 weight)
  kRelu,
  kSoftmax,  // row-wise over a matrix
  kConv2D,   // valid conv, weight [out_c, kh, kw, in_c]
  kMaxPool,  // 2x2 stride 2
  kFlatten,  // [n, ...] -> [n, prod(...)]
};

const char* OpKindName(OpKind kind);

struct Node {
  int id = -1;
  OpKind kind = OpKind::kInput;
  int input = -1;                // producing node (single-input chain ops)
  std::string weight_name;       // for kMatMul / kBiasAdd / kConv2D
  int64_t stride = 1;            // for kConv2D
  std::string name;              // display name
};

// A container of nodes in topological order plus named weights.
class Model {
 public:
  Model() = default;
  Model(std::string name, Shape sample_shape)
      : name_(std::move(name)), sample_shape_(std::move(sample_shape)) {}

  const std::string& name() const { return name_; }
  // Shape of one sample (without the batch dimension).
  const Shape& sample_shape() const { return sample_shape_; }

  // Appends a node; returns its id. `input` defaults to the previous
  // node (chain models). The first added node must be kInput.
  int AddNode(OpKind kind, std::string weight_name = "",
              int64_t stride = 1, int input = -2);

  Status AddWeight(const std::string& name, Tensor weight);

  const std::vector<Node>& nodes() const { return nodes_; }
  const Node& node(int id) const { return nodes_[id]; }
  int output_node() const {
    return static_cast<int>(nodes_.size()) - 1;
  }

  Result<const Tensor*> GetWeight(const std::string& name) const;

  // Mutable access for in-place weight updates (training, Sec. 6.1).
  Result<Tensor*> GetMutableWeight(const std::string& name);
  const std::map<std::string, Tensor>& weights() const {
    return weights_;
  }

  int64_t TotalWeightBytes() const;

  // Per-node output shapes for a given batch size (batch is dim 0).
  Result<std::vector<Shape>> InferShapes(int64_t batch_size) const;

  // Total floating-point operations for one batch.
  Result<double> EstimateFlops(int64_t batch_size) const;

  // Floating-point operations of a single node at `batch_size`.
  Result<double> EstimateNodeFlops(int node_id,
                                   int64_t batch_size) const;

  std::string ToString() const;

 private:
  std::string name_;
  Shape sample_shape_;
  std::vector<Node> nodes_;
  std::map<std::string, Tensor> weights_;
};

// --- Builders for the paper's model families ------------------------

// Fully connected network: dims = {in, hidden..., out}. Hidden layers
// get Relu; the output layer gets Softmax. Weights are random normal
// scaled by 1/sqrt(fan_in) (Xavier-ish) from `seed`.
Result<Model> BuildFFNN(const std::string& name,
                        const std::vector<int64_t>& dims, uint64_t seed,
                        MemoryTracker* tracker = nullptr);

struct ConvLayerSpec {
  int64_t out_channels = 1;
  int64_t kernel_h = 1;
  int64_t kernel_w = 1;
  int64_t stride = 1;
  bool relu = true;
  bool maxpool = false;  // 2x2 pool after activation
};

// Convolutional network over [h, w, c] samples: conv stack, flatten,
// then fully connected dims (empty fc_dims makes the conv output the
// model output).
Result<Model> BuildCNN(const std::string& name, Shape sample_shape,
                       const std::vector<ConvLayerSpec>& conv_layers,
                       const std::vector<int64_t>& fc_dims,
                       uint64_t seed, MemoryTracker* tracker = nullptr);

}  // namespace relserve

#endif  // RELSERVE_GRAPH_MODEL_H_
