// Binary model (de)serialization — the "load a model into the RDBMS"
// step of the paper's workflow. Format (little-endian):
//   magic "RSLV", u32 version
//   u32 name_len, name bytes
//   u32 sample_ndim, i64 dims...
//   u32 num_nodes, per node: u8 kind, i32 input, i64 stride,
//                            u32 weight_name_len, bytes
//   u32 num_weights, per weight: u32 name_len, bytes,
//                                u32 ndim, i64 dims..., f32 values...

#ifndef RELSERVE_GRAPH_MODEL_IO_H_
#define RELSERVE_GRAPH_MODEL_IO_H_

#include <string>

#include "common/result.h"
#include "graph/model.h"

namespace relserve {

Status SaveModel(const Model& model, const std::string& path);

Result<Model> LoadModel(const std::string& path,
                        MemoryTracker* tracker = nullptr);

}  // namespace relserve

#endif  // RELSERVE_GRAPH_MODEL_IO_H_
