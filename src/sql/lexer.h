// SQL lexer for the inference-query dialect (see parser.h).

#ifndef RELSERVE_SQL_LEXER_H_
#define RELSERVE_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace relserve {
namespace sql {

enum class TokenKind {
  kIdentifier,  // table / column / model / function names
  kKeyword,     // SELECT, FROM, WHERE, AND, OR, NOT, LIMIT, AS
  kNumber,      // integer or decimal literal
  kString,      // 'single quoted'
  kSymbol,      // ( ) , * = < > <= >= != .
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;  // keywords upper-cased; identifiers as written

  bool IsKeyword(const std::string& kw) const {
    return kind == TokenKind::kKeyword && text == kw;
  }
  bool IsSymbol(const std::string& s) const {
    return kind == TokenKind::kSymbol && text == s;
  }
};

// Tokenizes `input`; the final token is always kEnd.
Result<std::vector<Token>> Lex(const std::string& input);

}  // namespace sql
}  // namespace relserve

#endif  // RELSERVE_SQL_LEXER_H_
