#include "sql/query_executor.h"

#include <algorithm>
#include <cstring>
#include <memory>

#include "engine/physical_plan.h"
#include "kernels/kernels.h"
#include "optimizer/scan_cost.h"
#include "relational/expression.h"
#include "relational/operator.h"
#include "relational/vectorized.h"
#include "sql/parser.h"

namespace relserve {
namespace sql {

namespace {

Result<ExprPtr> BindOperand(const Operand& operand,
                            const Schema& schema) {
  if (!operand.is_column) {
    return Expression::Literal(operand.literal);
  }
  RELSERVE_ASSIGN_OR_RETURN(int index,
                            schema.FieldIndex(operand.column));
  return Expression::Column(index);
}

Result<ExprPtr> BindPredicate(const Predicate& predicate,
                              const Schema& schema) {
  switch (predicate.kind) {
    case PredicateKind::kComparison: {
      RELSERVE_ASSIGN_OR_RETURN(
          ExprPtr left, BindOperand(predicate.comparison.left, schema));
      RELSERVE_ASSIGN_OR_RETURN(
          ExprPtr right,
          BindOperand(predicate.comparison.right, schema));
      switch (predicate.comparison.op) {
        case CompareOp::kEq:
          return Expression::Binary(ExprKind::kEq, left, right);
        case CompareOp::kNe:
          return Expression::Not(
              Expression::Binary(ExprKind::kEq, left, right));
        case CompareOp::kLt:
          return Expression::Binary(ExprKind::kLt, left, right);
        case CompareOp::kLe:
          return Expression::Binary(ExprKind::kLe, left, right);
        case CompareOp::kGt:  // a > b  ==  b < a
          return Expression::Binary(ExprKind::kLt, right, left);
        case CompareOp::kGe:  // a >= b ==  b <= a
          return Expression::Binary(ExprKind::kLe, right, left);
      }
      return Status::Internal("unhandled comparison");
    }
    case PredicateKind::kAnd:
    case PredicateKind::kOr: {
      RELSERVE_ASSIGN_OR_RETURN(ExprPtr left,
                                BindPredicate(*predicate.left, schema));
      RELSERVE_ASSIGN_OR_RETURN(
          ExprPtr right, BindPredicate(*predicate.right, schema));
      return Expression::Binary(predicate.kind == PredicateKind::kAnd
                                    ? ExprKind::kAnd
                                    : ExprKind::kOr,
                                left, right);
    }
    case PredicateKind::kNot: {
      RELSERVE_ASSIGN_OR_RETURN(ExprPtr inner,
                                BindPredicate(*predicate.left, schema));
      return Expression::Not(inner);
    }
  }
  return Status::Internal("unhandled predicate kind");
}

// Runs a PREDICT item over a prebuilt [n, width] feature tensor;
// returns the model output matrix [n, classes].
Result<Tensor> RunPredictOnInput(ServingSession* session,
                                 const SelectItem& item,
                                 const Model* model, Tensor input,
                                 int64_t n) {
  std::vector<int64_t> dims = {n};
  for (int64_t d : model->sample_shape().dims()) dims.push_back(d);
  RELSERVE_ASSIGN_OR_RETURN(Tensor shaped,
                            input.Reshape(Shape(std::move(dims))));

  // Deploy on first use (adaptive), then reuse the deployment.
  Result<ExecOutput> out = session->PredictBatch(item.model, shaped);
  if (!out.ok() && out.status().IsNotFound()) {
    RELSERVE_RETURN_NOT_OK(
        session->Deploy(item.model, ServingMode::kAdaptive, n)
            .status());
    out = session->PredictBatch(item.model, shaped);
  }
  RELSERVE_RETURN_NOT_OK(out.status());
  RELSERVE_ASSIGN_OR_RETURN(Tensor scores,
                            out->ToTensor(session->exec_context()));
  const int64_t classes = scores.NumElements() / n;
  return scores.Reshape(Shape{n, classes});
}

// Runs a PREDICT over the qualifying rows' feature column; returns the
// model output matrix [rows.size(), classes].
Result<Tensor> RunPredict(ServingSession* session,
                          const SelectItem& item, const Schema& schema,
                          const std::vector<Row>& rows) {
  RELSERVE_ASSIGN_OR_RETURN(int col,
                            schema.FieldIndex(item.feature_col));
  RELSERVE_ASSIGN_OR_RETURN(const Model* model,
                            session->GetModel(item.model));
  const int64_t n = static_cast<int64_t>(rows.size());
  const int64_t width = model->sample_shape().NumElements();
  RELSERVE_ASSIGN_OR_RETURN(
      Tensor input,
      Tensor::Create(Shape{n, width}, session->working_memory()));
  for (int64_t r = 0; r < n; ++r) {
    const Value& v = rows[r].value(col);
    if (v.type() != ValueType::kFloatVector ||
        static_cast<int64_t>(v.AsFloatVector().size()) != width) {
      return Status::InvalidArgument(
          "column '" + item.feature_col +
          "' is not a feature vector of width " +
          std::to_string(width));
    }
    std::memcpy(input.data() + r * width, v.AsFloatVector().data(),
                width * sizeof(float));
  }
  return RunPredictOnInput(session, item, model, std::move(input), n);
}

// Columnar PREDICT: the filtered chunks pivot straight into the GEMM
// input tile (one memcpy per fragment) — no Row/Value boxing.
Result<Tensor> RunPredictOnBatches(ServingSession* session,
                                   const SelectItem& item,
                                   const Schema& schema,
                                   const std::string& table_name,
                                   const std::vector<ColumnBatch>& batches,
                                   int64_t n) {
  RELSERVE_ASSIGN_OR_RETURN(int col,
                            schema.FieldIndex(item.feature_col));
  RELSERVE_ASSIGN_OR_RETURN(const Model* model,
                            session->GetModel(item.model));
  const int64_t width = model->sample_shape().NumElements();
  ServingSession::ColumnarTableStages* stages =
      session->ColumnarStages(table_name);
  RELSERVE_ASSIGN_OR_RETURN(
      Tensor input,
      ExecuteColumnarGather(stages->gather, batches, col, width,
                            item.feature_col,
                            session->working_memory()));
  return RunPredictOnInput(session, item, model, std::move(input), n);
}

std::string AggName(AggregateFunc func) {
  switch (func) {
    case AggregateFunc::kCount:
      return "count";
    case AggregateFunc::kSum:
      return "sum";
    case AggregateFunc::kAvg:
      return "avg";
    case AggregateFunc::kMin:
      return "min";
    case AggregateFunc::kMax:
      return "max";
  }
  return "?";
}

std::string DefaultName(const SelectItem& item) {
  if (!item.alias.empty()) return item.alias;
  switch (item.kind) {
    case ItemKind::kColumn:
      return item.column;
    case ItemKind::kPredict:
      return "predict_" + item.model;
    case ItemKind::kPredictClass:
      return "class_" + item.model;
    case ItemKind::kAggregate:
      return AggName(item.agg) +
             (item.column == "*" ? "" : "_" + item.column);
    case ItemKind::kStar:
      return "*";
  }
  return "?";
}

// ORDER BY (over output column names) + the post-sort LIMIT.
Status ApplyOrderAndLimit(const SelectStatement& stmt,
                          QueryResult* result) {
  if (stmt.order_by.has_value()) {
    RELSERVE_ASSIGN_OR_RETURN(
        int key, result->schema.FieldIndex(*stmt.order_by));
    auto less = [key](const Row& a, const Row& b) {
      const Value& va = a.value(key);
      const Value& vb = b.value(key);
      if (va.type() == ValueType::kString &&
          vb.type() == ValueType::kString) {
        return va.AsString() < vb.AsString();
      }
      return va.AsNumeric() < vb.AsNumeric();
    };
    std::stable_sort(result->rows.begin(), result->rows.end(), less);
    if (stmt.order_desc) {
      std::reverse(result->rows.begin(), result->rows.end());
    }
    if (stmt.limit.has_value() &&
        static_cast<int64_t>(result->rows.size()) > *stmt.limit) {
      result->rows.resize(*stmt.limit);
    }
  }
  return Status::OK();
}

// Grouped/aggregated evaluation over the extended relation.
Result<QueryResult> RunGrouped(const SelectStatement& stmt,
                               const Schema& extended_schema,
                               std::vector<Row> extended_rows) {
  // Every non-aggregate select item must be a GROUP BY name.
  for (const SelectItem& item : stmt.items) {
    if (item.kind == ItemKind::kAggregate) continue;
    if (item.kind == ItemKind::kStar) {
      return Status::InvalidArgument("* is not valid with GROUP BY");
    }
    const std::string name = item.kind == ItemKind::kColumn
                                 ? item.column
                                 : DefaultName(item);
    if (std::find(stmt.group_by.begin(), stmt.group_by.end(), name) ==
        stmt.group_by.end()) {
      return Status::InvalidArgument(
          "'" + name + "' must appear in GROUP BY or an aggregate");
    }
  }

  // Bind group keys and aggregate specs against the extended schema.
  std::vector<int> group_keys;
  for (const std::string& name : stmt.group_by) {
    RELSERVE_ASSIGN_OR_RETURN(int index,
                              extended_schema.FieldIndex(name));
    group_keys.push_back(index);
  }
  std::vector<AggSpec> specs;
  for (const SelectItem& item : stmt.items) {
    if (item.kind != ItemKind::kAggregate) continue;
    AggSpec spec;
    spec.output_name = DefaultName(item);
    switch (item.agg) {
      case AggregateFunc::kCount:
        spec.func = AggFunc::kCount;
        break;
      case AggregateFunc::kSum:
        spec.func = AggFunc::kSum;
        break;
      case AggregateFunc::kAvg:
        spec.func = AggFunc::kAvg;
        break;
      case AggregateFunc::kMin:
        spec.func = AggFunc::kMin;
        break;
      case AggregateFunc::kMax:
        spec.func = AggFunc::kMax;
        break;
    }
    if (item.column != "*") {
      RELSERVE_ASSIGN_OR_RETURN(
          spec.column, extended_schema.FieldIndex(item.column));
    }
    specs.push_back(std::move(spec));
  }

  HashAggregate agg(std::make_unique<MemScan>(std::move(extended_rows),
                                              extended_schema),
                    group_keys, specs);
  RELSERVE_ASSIGN_OR_RETURN(std::vector<Row> agg_rows, Collect(&agg));

  // Reproject (keys..., aggs...) into the select-list order.
  std::vector<int> out_indices;
  std::vector<Column> out_columns;
  int agg_cursor = 0;
  for (const SelectItem& item : stmt.items) {
    if (item.kind == ItemKind::kAggregate) {
      const int index =
          static_cast<int>(group_keys.size()) + agg_cursor;
      out_indices.push_back(index);
      out_columns.push_back(agg.schema().column(index));
      ++agg_cursor;
    } else {
      const std::string name = item.kind == ItemKind::kColumn
                                   ? item.column
                                   : DefaultName(item);
      const auto it =
          std::find(stmt.group_by.begin(), stmt.group_by.end(), name);
      const int index =
          static_cast<int>(it - stmt.group_by.begin());
      out_indices.push_back(index);
      Column column = agg.schema().column(index);
      column.name = DefaultName(item);
      out_columns.push_back(std::move(column));
    }
  }
  QueryResult result;
  result.schema = Schema(std::move(out_columns));
  result.rows.reserve(agg_rows.size());
  for (const Row& row : agg_rows) {
    std::vector<Value> values;
    values.reserve(out_indices.size());
    for (int index : out_indices) values.push_back(row.value(index));
    result.rows.emplace_back(std::move(values));
  }
  return result;
}

}  // namespace

std::string QueryResult::ToString(int64_t max_rows) const {
  std::string out = schema.ToString() + "\n";
  const int64_t n =
      std::min<int64_t>(max_rows, static_cast<int64_t>(rows.size()));
  for (int64_t i = 0; i < n; ++i) {
    out += rows[i].ToString() + "\n";
  }
  if (n < static_cast<int64_t>(rows.size())) {
    out += "... (" + std::to_string(rows.size()) + " rows total)\n";
  }
  return out;
}

namespace {

// Executes a parsed SELECT (defined below, after the helpers it
// needs). EXPLAIN ANALYZE runs the query through it before rendering.
Result<QueryResult> ExecuteSelect(ServingSession* session,
                                  const SelectStatement& stmt);

// EXPLAIN: the bound relational pipeline plus each referenced model's
// optimizer plan at the table's current cardinality. With `analyze`,
// each deployed model's compiled stage pipeline follows, including
// the per-stage wall times, rows, bytes and representation-fallback
// counts accumulated so far (the execution that EXPLAIN ANALYZE just
// performed included).
Result<std::string> ExplainSelect(ServingSession* session,
                                  const SelectStatement& stmt,
                                  bool analyze) {
  RELSERVE_ASSIGN_OR_RETURN(TableInfo * table,
                            session->GetTable(stmt.table));
  std::string out;
  const int64_t rows = table->num_rows();
  const bool columnar = table->layout == TableLayout::kColumnar;
  if (columnar) {
    out += "ColumnarScan " + stmt.table + " (" + std::to_string(rows) +
           " rows, " +
           std::to_string(table->columnar->num_fragments()) +
           " fragments x " +
           std::to_string(table->columnar->fragment_rows()) +
           " rows/fragment)\n";
  } else {
    out += "SeqScan " + stmt.table + " (" + std::to_string(rows) +
           " rows)\n";
  }
  if (stmt.where != nullptr) {
    RELSERVE_ASSIGN_OR_RETURN(ExprPtr predicate,
                              BindPredicate(*stmt.where, table->schema));
    out += "  Filter: " + predicate->ToString() + "\n";
  }
  if (!stmt.group_by.empty()) {
    out += "  GroupBy:";
    for (const std::string& key : stmt.group_by) out += " " + key;
    out += "\n";
  }
  if (stmt.limit.has_value()) {
    out += "  Limit: " + std::to_string(*stmt.limit) + "\n";
  }
  if (columnar) {
    // The session-owned vectorized stages; with ANALYZE their
    // counters carry the execution this statement just performed.
    ServingSession::ColumnarTableStages* stages =
        session->ColumnarStages(stmt.table);
    out += "  " + RenderStandaloneStage(stages->scan, analyze) + "\n";
    out += "  " + RenderStandaloneStage(stages->gather, analyze) + "\n";
    if (analyze) out += "  " + ScanCostModel::ToString() + "\n";
  }
  RuleBasedOptimizer optimizer(
      session->config().memory_threshold_bytes);
  for (const SelectItem& item : stmt.items) {
    if (item.kind != ItemKind::kPredict &&
        item.kind != ItemKind::kPredictClass) {
      continue;
    }
    RELSERVE_ASSIGN_OR_RETURN(const Model* model,
                              session->GetModel(item.model));
    RELSERVE_ASSIGN_OR_RETURN(
        InferencePlan plan,
        optimizer.Optimize(*model, std::max<int64_t>(1, rows)));
    out += plan.ToString(*model);
    if (analyze) {
      Result<std::shared_ptr<const PhysicalPlan>> physical =
          session->DeployedPhysicalPlan(item.model);
      if (physical.ok()) {
        out += (*physical)->ToString(/*analyze=*/true);
      } else {
        out += "PhysicalPlan " + item.model + ": (not deployed)\n";
      }
    }
  }
  return out;
}

Status CheckInsertRow(const Schema& schema,
                      const std::vector<Value>& row) {
  if (static_cast<int>(row.size()) != schema.num_columns()) {
    return Status::InvalidArgument(
        "INSERT row has " + std::to_string(row.size()) +
        " values; table has " + std::to_string(schema.num_columns()) +
        " columns");
  }
  for (int c = 0; c < schema.num_columns(); ++c) {
    ValueType got = row[c].type();
    const ValueType want = schema.column(c).type;
    // Int literals are accepted for FLOAT64 columns.
    if (got == ValueType::kInt64 && want == ValueType::kFloat64) {
      continue;
    }
    if (got != want) {
      return Status::InvalidArgument(
          "column '" + schema.column(c).name + "' expects " +
          ValueTypeName(want) + ", got " + ValueTypeName(got));
    }
  }
  return Status::OK();
}

}  // namespace

Result<StatementResult> ExecuteStatement(ServingSession* session,
                                         const std::string& sql) {
  RELSERVE_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(sql));
  StatementResult result;
  switch (stmt.kind) {
    case Statement::Kind::kSelect: {
      // Re-dispatch through the SELECT path below.
      break;
    }
    case Statement::Kind::kExplainSelect: {
      if (stmt.analyze) {
        // ANALYZE executes the query first (deploying referenced
        // models on first use) so the rendered stage pipeline carries
        // real timings; the row output is discarded.
        RELSERVE_RETURN_NOT_OK(
            ExecuteSelect(session, stmt.select).status());
      }
      RELSERVE_ASSIGN_OR_RETURN(
          result.message,
          ExplainSelect(session, stmt.select, stmt.analyze));
      return result;
    }
    case Statement::Kind::kCreateTable: {
      RELSERVE_RETURN_NOT_OK(
          session->CreateTable(stmt.create.table,
                               Schema(stmt.create.columns),
                               stmt.create.columnar
                                   ? TableLayout::kColumnar
                                   : TableLayout::kRow)
              .status());
      result.message = "created table " + stmt.create.table +
                       (stmt.create.columnar ? " (columnar)" : "");
      return result;
    }
    case Statement::Kind::kInsert: {
      RELSERVE_ASSIGN_OR_RETURN(TableInfo * table,
                                session->GetTable(stmt.insert.table));
      std::vector<Row> rows;
      rows.reserve(stmt.insert.rows.size());
      for (const std::vector<Value>& values : stmt.insert.rows) {
        RELSERVE_RETURN_NOT_OK(CheckInsertRow(table->schema, values));
        // Coerce int literals destined for FLOAT64 columns.
        std::vector<Value> coerced = values;
        for (int c = 0; c < table->schema.num_columns(); ++c) {
          if (table->schema.column(c).type == ValueType::kFloat64 &&
              coerced[c].type() == ValueType::kInt64) {
            coerced[c] = Value(
                static_cast<double>(coerced[c].AsInt64()));
          }
        }
        rows.emplace_back(std::move(coerced));
      }
      // One atomic transaction through the WAL/MVCC write path; a
      // failed append or commit surfaces its typed Status here with
      // zero rows applied — never a silent success.
      RELSERVE_RETURN_NOT_OK(
          session->IngestRows(stmt.insert.table, rows));
      result.rows_affected = static_cast<int64_t>(rows.size());
      result.message = "inserted " + std::to_string(rows.size()) +
                       " rows into " + stmt.insert.table;
      return result;
    }
    case Statement::Kind::kShowModels: {
      // One row per deployed model: compiled plan count and the
      // logical-vs-physical weight bytes after shared-block
      // resolution through the session's PhysicalBlockIndex.
      result.has_rows = true;
      result.query.schema = Schema({
          Column{"model", ValueType::kString},
          Column{"plans", ValueType::kInt64},
          Column{"logical_bytes", ValueType::kInt64},
          Column{"physical_bytes", ValueType::kInt64},
          Column{"shared_blocks", ValueType::kInt64},
          Column{"total_blocks", ValueType::kInt64},
      });
      for (const ServingSession::DeployedModelInfo& info :
           session->ListDeployedModels()) {
        result.query.rows.emplace_back(std::vector<Value>{
            Value(info.name), Value(int64_t{info.num_plans}),
            Value(info.logical_weight_bytes),
            Value(info.physical_weight_bytes),
            Value(info.shared_blocks), Value(info.total_blocks)});
      }
      return result;
    }
    case Statement::Kind::kUpdate:
    case Statement::Kind::kDelete: {
      const bool is_update = stmt.kind == Statement::Kind::kUpdate;
      const std::string& table_name =
          is_update ? stmt.update.table : stmt.del.table;
      RELSERVE_ASSIGN_OR_RETURN(TableInfo * table,
                                session->GetTable(table_name));
      const Schema& schema = table->schema;
      const Predicate* where =
          is_update ? stmt.update.where.get() : stmt.del.where.get();
      ExprPtr predicate;
      if (where != nullptr) {
        RELSERVE_ASSIGN_OR_RETURN(predicate,
                                  BindPredicate(*where, schema));
      }
      std::vector<std::pair<int, Value>> sets;
      if (is_update) {
        for (const SetClause& set : stmt.update.sets) {
          RELSERVE_ASSIGN_OR_RETURN(int index,
                                    schema.FieldIndex(set.column));
          Value v = set.value;
          if (schema.column(index).type == ValueType::kFloat64 &&
              v.type() == ValueType::kInt64) {
            v = Value(static_cast<double>(v.AsInt64()));
          }
          if (v.type() != schema.column(index).type) {
            return Status::InvalidArgument(
                "column '" + set.column + "' expects " +
                ValueTypeName(schema.column(index).type) + ", got " +
                ValueTypeName(v.type()));
          }
          sets.emplace_back(index, std::move(v));
        }
      }
      // Collect target ordinals at a pinned snapshot: the scan walks
      // every physical row in insertion order (= VisibilityMap
      // ordinal); invisible rows — deleted, superseded, or committed
      // after the pin — are skipped before the WHERE runs.
      const Version snap = session->PinSnapshot();
      const VisibilityMap* vis = table->visibility.get();
      RowIteratorPtr scan = MakeTableScan(
          table->heap.get(), table->columnar.get(), schema);
      RELSERVE_RETURN_NOT_OK(scan->Open());
      std::vector<WriteOp> ops;
      Row row;
      int64_t ordinal = 0;
      while (true) {
        RELSERVE_ASSIGN_OR_RETURN(bool has, scan->Next(&row));
        if (!has) break;
        const int64_t ord = ordinal++;
        if (vis != nullptr && !vis->IsVisible(ord, snap)) continue;
        if (predicate != nullptr) {
          RELSERVE_ASSIGN_OR_RETURN(bool pass,
                                    predicate->EvaluateBool(row));
          if (!pass) continue;
        }
        WriteOp op;
        op.ordinal = ord;
        if (is_update) {
          op.kind = WriteOp::Kind::kUpdate;
          std::vector<Value> values = row.values();
          for (const auto& [index, v] : sets) values[index] = v;
          op.row = Row(std::move(values));
        } else {
          op.kind = WriteOp::Kind::kDelete;
        }
        ops.push_back(std::move(op));
      }
      const int64_t affected = static_cast<int64_t>(ops.size());
      RELSERVE_RETURN_NOT_OK(
          session->ApplyWrite(table_name, std::move(ops)));
      result.rows_affected = affected;
      result.message = (is_update ? "updated " : "deleted ") +
                       std::to_string(affected) + " rows in " +
                       table_name;
      return result;
    }
  }
  result.has_rows = true;
  RELSERVE_ASSIGN_OR_RETURN(result.query, ExecuteQuery(session, sql));
  return result;
}

Result<QueryResult> ExecuteQuery(ServingSession* session,
                                 const std::string& query) {
  RELSERVE_ASSIGN_OR_RETURN(SelectStatement stmt, Parse(query));
  return ExecuteSelect(session, stmt);
}

namespace {

Result<QueryResult> ExecuteSelect(ServingSession* session,
                                  const SelectStatement& stmt) {
  RELSERVE_ASSIGN_OR_RETURN(TableInfo * table,
                            session->GetTable(stmt.table));
  const Schema& schema = table->schema;
  // Pin one MVCC snapshot for the whole statement: every scan below
  // evaluates at it, so the result is a consistent cut of history
  // even while concurrent ingest commits land.
  const Version snapshot = session->PinSnapshot();
  const VisibilityMap* visibility = table->visibility.get();

  ExprPtr predicate;
  if (stmt.where != nullptr) {
    RELSERVE_ASSIGN_OR_RETURN(predicate,
                              BindPredicate(*stmt.where, schema));
  }
  // With ORDER BY, LIMIT applies to the *sorted* output, so it cannot
  // be pushed into the pipeline.
  const bool push_limit =
      stmt.limit.has_value() && !stmt.order_by.has_value();
  ExecStats* exec_stats = &session->exec_context()->stats;

  std::vector<Row> base_rows;
  // The filtered chunks of a columnar scan, kept so PREDICT items can
  // pivot them straight into GEMM tiles below.
  std::vector<ColumnBatch> kept_batches;
  const bool columnar = table->layout == TableLayout::kColumnar;
  if (columnar) {
    // Vectorized path: filter + limit pushdown into the
    // fragment-parallel scan; rows are boxed once, after the filter.
    ColumnarScanOptions opts;
    opts.predicate = predicate;
    opts.pool = session->thread_pool();
    opts.visibility = visibility;
    opts.snapshot = snapshot;
    if (push_limit) opts.limit = *stmt.limit;
    RELSERVE_ASSIGN_OR_RETURN(ColumnarScanOutput scanned,
                              ColumnarScan(*table->columnar, opts));
    constexpr auto kRelaxed = std::memory_order_relaxed;
    exec_stats->rows_scanned.fetch_add(scanned.rows_scanned, kRelaxed);
    exec_stats->bytes_scanned.fetch_add(scanned.bytes_scanned,
                                        kRelaxed);
    ServingSession::ColumnarTableStages* stages =
        session->ColumnarStages(stmt.table);
    stages->scan.stats.invocations.fetch_add(1, kRelaxed);
    stages->scan.stats.nanos.fetch_add(scanned.nanos, kRelaxed);
    stages->scan.stats.rows.fetch_add(scanned.rows_scanned, kRelaxed);
    stages->scan.stats.bytes.fetch_add(scanned.bytes_scanned,
                                       kRelaxed);
    base_rows = scanned.ToRows();
    kept_batches = std::move(scanned.batches);
  } else {
    // scan -> [filter] -> [limit]
    auto scan = std::make_unique<SeqScan>(table->heap.get(), schema);
    scan->set_telemetry(&exec_stats->rows_scanned,
                        &exec_stats->bytes_scanned);
    scan->set_visibility(visibility, snapshot);
    RowIteratorPtr plan = std::move(scan);
    if (predicate != nullptr) {
      plan = std::make_unique<Filter>(std::move(plan), predicate);
    }
    if (push_limit) {
      plan = std::make_unique<Limit>(std::move(plan), *stmt.limit);
    }
    RELSERVE_ASSIGN_OR_RETURN(base_rows, Collect(plan.get()));
  }

  // Evaluate PREDICT items and append their values as extra columns
  // of an "extended" relation the select list (and any GROUP BY)
  // resolves against.
  std::vector<Column> extended_columns = schema.columns();
  std::vector<Row> extended_rows = std::move(base_rows);
  for (const SelectItem& item : stmt.items) {
    if (item.kind != ItemKind::kPredict &&
        item.kind != ItemKind::kPredictClass) {
      continue;
    }
    extended_columns.push_back(
        Column{DefaultName(item), item.kind == ItemKind::kPredict
                                      ? ValueType::kFloatVector
                                      : ValueType::kInt64});
    if (extended_rows.empty()) continue;
    Result<Tensor> predicted =
        columnar ? RunPredictOnBatches(
                       session, item, schema, stmt.table, kept_batches,
                       static_cast<int64_t>(extended_rows.size()))
                 : RunPredict(session, item, schema, extended_rows);
    RELSERVE_ASSIGN_OR_RETURN(Tensor scores, std::move(predicted));
    const int64_t classes = scores.shape().dim(1);
    for (size_t r = 0; r < extended_rows.size(); ++r) {
      if (item.kind == ItemKind::kPredict) {
        std::vector<float> row_scores(
            scores.data() + r * classes,
            scores.data() + (r + 1) * classes);
        extended_rows[r].Append(Value(std::move(row_scores)));
      } else {
        int64_t best = 0;
        for (int64_t c = 1; c < classes; ++c) {
          if (scores.At(r, c) > scores.At(r, best)) best = c;
        }
        extended_rows[r].Append(Value(best));
      }
    }
  }
  Schema extended_schema(extended_columns);

  const bool has_aggregates =
      std::any_of(stmt.items.begin(), stmt.items.end(),
                  [](const SelectItem& item) {
                    return item.kind == ItemKind::kAggregate;
                  });
  if (!stmt.group_by.empty() || has_aggregates) {
    RELSERVE_ASSIGN_OR_RETURN(
        QueryResult grouped,
        RunGrouped(stmt, extended_schema, std::move(extended_rows)));
    RELSERVE_RETURN_NOT_OK(ApplyOrderAndLimit(stmt, &grouped));
    return grouped;
  }

  // Plain projection over the extended relation.
  QueryResult result;
  std::vector<Column> out_columns;
  std::vector<int> out_indices;
  for (const SelectItem& item : stmt.items) {
    if (item.kind == ItemKind::kStar) {
      for (int c = 0; c < schema.num_columns(); ++c) {
        out_columns.push_back(schema.column(c));
        out_indices.push_back(c);
      }
      continue;
    }
    const std::string name = item.kind == ItemKind::kColumn
                                 ? item.column
                                 : DefaultName(item);
    RELSERVE_ASSIGN_OR_RETURN(int index,
                              extended_schema.FieldIndex(name));
    Column column = extended_schema.column(index);
    column.name = DefaultName(item);
    out_columns.push_back(std::move(column));
    out_indices.push_back(index);
  }
  result.schema = Schema(std::move(out_columns));
  result.rows.reserve(extended_rows.size());
  for (const Row& row : extended_rows) {
    std::vector<Value> values;
    values.reserve(out_indices.size());
    for (int index : out_indices) values.push_back(row.value(index));
    result.rows.emplace_back(std::move(values));
  }
  RELSERVE_RETURN_NOT_OK(ApplyOrderAndLimit(stmt, &result));
  return result;
}

}  // namespace

}  // namespace sql
}  // namespace relserve
