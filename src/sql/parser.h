// Parser for relserve's inference-query SQL dialect — the paper's
// motivating interface of "SQL queries nested with deep learning
// inferences":
//
//   SELECT <item> [, <item>]* FROM <table>
//     [WHERE <predicate>] [GROUP BY <name> [, <name>]*]
//     [ORDER BY <output-column> [ASC|DESC]] [LIMIT <n>]
//
// ORDER BY names a column of the *output* (a selected column, an
// alias, or an aggregate's name), and LIMIT then applies to the
// sorted rows.
//
//   item      := * | column [AS alias]
//              | PREDICT(model [, feature_column]) [AS alias]
//              | PREDICT_CLASS(model [, feature_column]) [AS alias]
//              | COUNT(*) | COUNT(name) | SUM(name) | AVG(name)
//              | MIN(name) | MAX(name)        [AS alias]
//   predicate := disjunction of conjunctions of comparisons
//   compare   := operand (= | != | < | <= | > | >=) operand
//   operand   := column | number | 'string'
//
// PREDICT adds the model's output row as a FLOAT_VECTOR column;
// PREDICT_CLASS adds the argmax class as an INT64 column. GROUP BY
// names may reference base columns or the alias of a PREDICT_CLASS
// item, so inference results can be grouped and aggregated:
//   SELECT PREDICT_CLASS(fraud) AS cls, COUNT(*) FROM tx GROUP BY cls

#ifndef RELSERVE_SQL_PARSER_H_
#define RELSERVE_SQL_PARSER_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "relational/schema.h"
#include "relational/value.h"

namespace relserve {
namespace sql {

// --- Predicate AST ----------------------------------------------------

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

struct Operand {
  bool is_column = false;
  std::string column;  // when is_column
  Value literal;       // otherwise
};

struct Comparison {
  Operand left;
  CompareOp op = CompareOp::kEq;
  Operand right;
};

struct Predicate;
using PredicatePtr = std::unique_ptr<Predicate>;

enum class PredicateKind { kComparison, kAnd, kOr, kNot };

struct Predicate {
  PredicateKind kind = PredicateKind::kComparison;
  Comparison comparison;       // kComparison
  PredicatePtr left, right;    // kAnd / kOr (kNot uses left)
};

// --- Select list --------------------------------------------------------

enum class ItemKind {
  kStar,
  kColumn,
  kPredict,
  kPredictClass,
  kAggregate,
};

enum class AggregateFunc { kCount, kSum, kAvg, kMin, kMax };

struct SelectItem {
  ItemKind kind = ItemKind::kColumn;
  std::string column;       // kColumn / kAggregate argument ("*" for
                            // COUNT(*))
  std::string model;        // kPredict / kPredictClass
  std::string feature_col;  // defaults to "features"
  AggregateFunc agg = AggregateFunc::kCount;  // kAggregate
  std::string alias;        // optional output name
};

struct SelectStatement {
  std::vector<SelectItem> items;
  std::string table;
  PredicatePtr where;                  // may be null
  std::vector<std::string> group_by;   // empty = no grouping
  std::optional<std::string> order_by;  // output column name
  bool order_desc = false;
  std::optional<int64_t> limit;
};

// --- DDL / DML ----------------------------------------------------------

struct CreateTableStatement {
  std::string table;
  std::vector<Column> columns;  // types: INT64/FLOAT64/STRING/
                                // FLOAT_VECTOR
  // CREATE TABLE ... STORAGE COLUMNAR (default is the row heap).
  bool columnar = false;
};

struct InsertStatement {
  std::string table;
  // One Value list per inserted row; FLOAT_VECTOR literals use
  // bracket syntax: [1.0, 2.0, 3.0].
  std::vector<std::vector<Value>> rows;
};

// UPDATE <table> SET col = literal [, col = literal]* [WHERE ...]
struct SetClause {
  std::string column;
  Value value;
};

struct UpdateStatement {
  std::string table;
  std::vector<SetClause> sets;
  PredicatePtr where;  // may be null (updates every row)
};

// DELETE FROM <table> [WHERE ...]
struct DeleteStatement {
  std::string table;
  PredicatePtr where;  // may be null (deletes every row)
};

struct Statement {
  enum class Kind {
    kSelect,
    kExplainSelect,
    kCreateTable,
    kInsert,
    kUpdate,
    kDelete,
    kShowModels,
  };
  Kind kind = Kind::kSelect;
  // EXPLAIN ANALYZE: execute the query, then render the plan with the
  // accumulated per-stage timings (kExplainSelect only).
  bool analyze = false;
  SelectStatement select;        // kSelect / kExplainSelect
  CreateTableStatement create;   // kCreateTable
  InsertStatement insert;        // kInsert
  UpdateStatement update;        // kUpdate
  DeleteStatement del;           // kDelete
};

// Parses one SELECT statement.
Result<SelectStatement> Parse(const std::string& query);

// Parses any supported statement (SELECT / EXPLAIN [ANALYZE] SELECT /
// CREATE TABLE / INSERT INTO).
Result<Statement> ParseStatement(const std::string& query);

}  // namespace sql
}  // namespace relserve

#endif  // RELSERVE_SQL_PARSER_H_
