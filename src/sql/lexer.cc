#include "sql/lexer.h"

#include <cctype>
#include <unordered_set>

namespace relserve {
namespace sql {

namespace {

const std::unordered_set<std::string>& Keywords() {
  static const auto* kKeywords = new std::unordered_set<std::string>{
      "SELECT", "FROM", "WHERE", "AND", "OR", "NOT", "LIMIT", "AS",
      "GROUP", "BY", "CREATE", "TABLE", "INSERT", "INTO", "VALUES",
      "EXPLAIN", "ANALYZE", "ORDER", "ASC", "DESC", "STORAGE",
      "UPDATE", "SET", "DELETE", "SHOW", "MODELS",
  };
  return *kKeywords;
}

std::string ToUpper(std::string s) {
  for (char& c : s) c = static_cast<char>(std::toupper(c));
  return s;
}

}  // namespace

Result<std::vector<Token>> Lex(const std::string& input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    const char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(
                           input[j])) ||
                       input[j] == '_' || input[j] == '@')) {
        ++j;
      }
      std::string word = input.substr(i, j - i);
      const std::string upper = ToUpper(word);
      if (Keywords().count(upper) > 0) {
        tokens.push_back(Token{TokenKind::kKeyword, upper});
      } else {
        tokens.push_back(Token{TokenKind::kIdentifier, std::move(word)});
      }
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      size_t j = i + 1;
      bool seen_dot = false;
      while (j < n && (std::isdigit(static_cast<unsigned char>(
                           input[j])) ||
                       (input[j] == '.' && !seen_dot))) {
        seen_dot |= input[j] == '.';
        ++j;
      }
      tokens.push_back(Token{TokenKind::kNumber, input.substr(i, j - i)});
      i = j;
      continue;
    }
    if (c == '\'') {
      size_t j = i + 1;
      while (j < n && input[j] != '\'') ++j;
      if (j >= n) {
        return Status::InvalidArgument("unterminated string literal");
      }
      tokens.push_back(
          Token{TokenKind::kString, input.substr(i + 1, j - i - 1)});
      i = j + 1;
      continue;
    }
    // Two-character comparison symbols first.
    if (i + 1 < n) {
      const std::string two = input.substr(i, 2);
      if (two == "<=" || two == ">=" || two == "!=" || two == "<>") {
        tokens.push_back(
            Token{TokenKind::kSymbol, two == "<>" ? "!=" : two});
        i += 2;
        continue;
      }
    }
    const std::string one(1, c);
    if (one == "(" || one == ")" || one == "," || one == "*" ||
        one == "=" || one == "<" || one == ">" || one == "." ||
        one == "[" || one == "]") {
      tokens.push_back(Token{TokenKind::kSymbol, one});
      ++i;
      continue;
    }
    return Status::InvalidArgument(std::string("unexpected character '") +
                                   c + "' in SQL");
  }
  tokens.push_back(Token{TokenKind::kEnd, ""});
  return tokens;
}

}  // namespace sql
}  // namespace relserve
