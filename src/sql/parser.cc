#include "sql/parser.h"

#include <cstdlib>

#include "sql/lexer.h"

namespace relserve {
namespace sql {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens)
      : tokens_(std::move(tokens)) {}

  Result<Statement> ParseStatement() {
    Statement stmt;
    if (ConsumeKeyword("EXPLAIN")) {
      stmt.kind = Statement::Kind::kExplainSelect;
      stmt.analyze = ConsumeKeyword("ANALYZE");
      RELSERVE_ASSIGN_OR_RETURN(stmt.select, ParseSelect());
      return stmt;
    }
    if (ConsumeKeyword("CREATE")) {
      stmt.kind = Statement::Kind::kCreateTable;
      RELSERVE_RETURN_NOT_OK(ExpectKeyword("TABLE"));
      RELSERVE_ASSIGN_OR_RETURN(stmt.create.table, ExpectIdentifier());
      RELSERVE_RETURN_NOT_OK(ExpectSymbol("("));
      while (true) {
        Column column;
        RELSERVE_ASSIGN_OR_RETURN(column.name, ExpectIdentifier());
        RELSERVE_ASSIGN_OR_RETURN(std::string type, ExpectIdentifier());
        for (char& c : type) c = static_cast<char>(std::toupper(c));
        if (type == "INT64") {
          column.type = ValueType::kInt64;
        } else if (type == "FLOAT64") {
          column.type = ValueType::kFloat64;
        } else if (type == "STRING") {
          column.type = ValueType::kString;
        } else if (type == "FLOAT_VECTOR") {
          column.type = ValueType::kFloatVector;
        } else {
          return Status::InvalidArgument("unknown column type '" +
                                         type + "'");
        }
        stmt.create.columns.push_back(std::move(column));
        if (!ConsumeSymbol(",")) break;
      }
      RELSERVE_RETURN_NOT_OK(ExpectSymbol(")"));
      // Optional layout clause: STORAGE COLUMNAR | STORAGE ROW.
      // (COLUMNAR/ROW stay plain identifiers so columns may use the
      // names.)
      if (ConsumeKeyword("STORAGE")) {
        RELSERVE_ASSIGN_OR_RETURN(std::string layout,
                                  ExpectIdentifier());
        for (char& c : layout) c = static_cast<char>(std::toupper(c));
        if (layout == "COLUMNAR") {
          stmt.create.columnar = true;
        } else if (layout != "ROW") {
          return Status::InvalidArgument(
              "expected COLUMNAR or ROW after STORAGE, got '" +
              layout + "'");
        }
      }
      RELSERVE_RETURN_NOT_OK(ExpectEnd());
      return stmt;
    }
    if (ConsumeKeyword("INSERT")) {
      stmt.kind = Statement::Kind::kInsert;
      RELSERVE_RETURN_NOT_OK(ExpectKeyword("INTO"));
      RELSERVE_ASSIGN_OR_RETURN(stmt.insert.table, ExpectIdentifier());
      RELSERVE_RETURN_NOT_OK(ExpectKeyword("VALUES"));
      while (true) {
        RELSERVE_RETURN_NOT_OK(ExpectSymbol("("));
        std::vector<Value> row;
        while (true) {
          RELSERVE_ASSIGN_OR_RETURN(Value v, ParseLiteral());
          row.push_back(std::move(v));
          if (!ConsumeSymbol(",")) break;
        }
        RELSERVE_RETURN_NOT_OK(ExpectSymbol(")"));
        stmt.insert.rows.push_back(std::move(row));
        if (!ConsumeSymbol(",")) break;
      }
      RELSERVE_RETURN_NOT_OK(ExpectEnd());
      return stmt;
    }
    if (ConsumeKeyword("UPDATE")) {
      stmt.kind = Statement::Kind::kUpdate;
      RELSERVE_ASSIGN_OR_RETURN(stmt.update.table, ExpectIdentifier());
      RELSERVE_RETURN_NOT_OK(ExpectKeyword("SET"));
      while (true) {
        SetClause set;
        RELSERVE_ASSIGN_OR_RETURN(set.column, ExpectIdentifier());
        RELSERVE_RETURN_NOT_OK(ExpectSymbol("="));
        RELSERVE_ASSIGN_OR_RETURN(set.value, ParseLiteral());
        stmt.update.sets.push_back(std::move(set));
        if (!ConsumeSymbol(",")) break;
      }
      if (ConsumeKeyword("WHERE")) {
        RELSERVE_ASSIGN_OR_RETURN(stmt.update.where, ParseOr());
      }
      RELSERVE_RETURN_NOT_OK(ExpectEnd());
      return stmt;
    }
    if (ConsumeKeyword("DELETE")) {
      stmt.kind = Statement::Kind::kDelete;
      RELSERVE_RETURN_NOT_OK(ExpectKeyword("FROM"));
      RELSERVE_ASSIGN_OR_RETURN(stmt.del.table, ExpectIdentifier());
      if (ConsumeKeyword("WHERE")) {
        RELSERVE_ASSIGN_OR_RETURN(stmt.del.where, ParseOr());
      }
      RELSERVE_RETURN_NOT_OK(ExpectEnd());
      return stmt;
    }
    if (ConsumeKeyword("SHOW")) {
      stmt.kind = Statement::Kind::kShowModels;
      RELSERVE_RETURN_NOT_OK(ExpectKeyword("MODELS"));
      RELSERVE_RETURN_NOT_OK(ExpectEnd());
      return stmt;
    }
    stmt.kind = Statement::Kind::kSelect;
    RELSERVE_ASSIGN_OR_RETURN(stmt.select, ParseSelect());
    return stmt;
  }

  Result<SelectStatement> ParseSelect() {
    RELSERVE_RETURN_NOT_OK(ExpectKeyword("SELECT"));
    SelectStatement stmt;
    while (true) {
      RELSERVE_ASSIGN_OR_RETURN(SelectItem item, ParseItem());
      stmt.items.push_back(std::move(item));
      if (!ConsumeSymbol(",")) break;
    }
    RELSERVE_RETURN_NOT_OK(ExpectKeyword("FROM"));
    RELSERVE_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier());
    if (ConsumeKeyword("WHERE")) {
      RELSERVE_ASSIGN_OR_RETURN(stmt.where, ParseOr());
    }
    if (ConsumeKeyword("GROUP")) {
      RELSERVE_RETURN_NOT_OK(ExpectKeyword("BY"));
      while (true) {
        RELSERVE_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier());
        stmt.group_by.push_back(std::move(name));
        if (!ConsumeSymbol(",")) break;
      }
    }
    if (ConsumeKeyword("ORDER")) {
      RELSERVE_RETURN_NOT_OK(ExpectKeyword("BY"));
      RELSERVE_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier());
      stmt.order_by = std::move(name);
      if (ConsumeKeyword("DESC")) {
        stmt.order_desc = true;
      } else {
        ConsumeKeyword("ASC");
      }
    }
    if (ConsumeKeyword("LIMIT")) {
      if (Peek().kind != TokenKind::kNumber) {
        return Status::InvalidArgument("LIMIT expects a number");
      }
      stmt.limit = std::atoll(Advance().text.c_str());
      if (*stmt.limit < 0) {
        return Status::InvalidArgument("negative LIMIT");
      }
    }
    if (Peek().kind != TokenKind::kEnd) {
      return Status::InvalidArgument("unexpected trailing token '" +
                                     Peek().text + "'");
    }
    return stmt;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  Token Advance() { return tokens_[pos_++]; }

  bool ConsumeKeyword(const std::string& kw) {
    if (Peek().IsKeyword(kw)) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool ConsumeSymbol(const std::string& s) {
    if (Peek().IsSymbol(s)) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status ExpectKeyword(const std::string& kw) {
    if (!ConsumeKeyword(kw)) {
      return Status::InvalidArgument("expected " + kw + ", got '" +
                                     Peek().text + "'");
    }
    return Status::OK();
  }
  Status ExpectSymbol(const std::string& s) {
    if (!ConsumeSymbol(s)) {
      return Status::InvalidArgument("expected '" + s + "', got '" +
                                     Peek().text + "'");
    }
    return Status::OK();
  }
  Result<std::string> ExpectIdentifier() {
    if (Peek().kind != TokenKind::kIdentifier) {
      return Status::InvalidArgument("expected identifier, got '" +
                                     Peek().text + "'");
    }
    return Advance().text;
  }
  Status ExpectEnd() {
    if (Peek().kind != TokenKind::kEnd) {
      return Status::InvalidArgument("unexpected trailing token '" +
                                     Peek().text + "'");
    }
    return Status::OK();
  }

  // number | 'string' | [f, f, ...] vector literal
  Result<Value> ParseLiteral() {
    const Token& tok = Peek();
    if (tok.kind == TokenKind::kNumber) {
      const std::string text = Advance().text;
      if (text.find('.') != std::string::npos) {
        return Value(std::atof(text.c_str()));
      }
      return Value(static_cast<int64_t>(std::atoll(text.c_str())));
    }
    if (tok.kind == TokenKind::kString) {
      return Value(Advance().text);
    }
    if (ConsumeSymbol("[")) {
      std::vector<float> vec;
      if (!ConsumeSymbol("]")) {
        while (true) {
          if (Peek().kind != TokenKind::kNumber) {
            return Status::InvalidArgument(
                "vector literal expects numbers");
          }
          vec.push_back(
              static_cast<float>(std::atof(Advance().text.c_str())));
          if (!ConsumeSymbol(",")) break;
        }
        RELSERVE_RETURN_NOT_OK(ExpectSymbol("]"));
      }
      return Value(std::move(vec));
    }
    return Status::InvalidArgument("expected literal, got '" +
                                   tok.text + "'");
  }

  Result<SelectItem> ParseItem() {
    SelectItem item;
    if (ConsumeSymbol("*")) {
      item.kind = ItemKind::kStar;
      return item;
    }
    RELSERVE_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier());
    std::string upper = name;
    for (char& c : upper) c = static_cast<char>(std::toupper(c));
    if ((upper == "COUNT" || upper == "SUM" || upper == "AVG" ||
         upper == "MIN" || upper == "MAX") &&
        Peek().IsSymbol("(")) {
      ++pos_;  // consume '('
      item.kind = ItemKind::kAggregate;
      if (upper == "COUNT") item.agg = AggregateFunc::kCount;
      if (upper == "SUM") item.agg = AggregateFunc::kSum;
      if (upper == "AVG") item.agg = AggregateFunc::kAvg;
      if (upper == "MIN") item.agg = AggregateFunc::kMin;
      if (upper == "MAX") item.agg = AggregateFunc::kMax;
      if (ConsumeSymbol("*")) {
        if (item.agg != AggregateFunc::kCount) {
          return Status::InvalidArgument(upper + "(*) is not valid");
        }
        item.column = "*";
      } else {
        RELSERVE_ASSIGN_OR_RETURN(item.column, ExpectIdentifier());
      }
      RELSERVE_RETURN_NOT_OK(ExpectSymbol(")"));
      if (ConsumeKeyword("AS")) {
        RELSERVE_ASSIGN_OR_RETURN(item.alias, ExpectIdentifier());
      }
      return item;
    }
    if ((upper == "PREDICT" || upper == "PREDICT_CLASS") &&
        Peek().IsSymbol("(")) {
      ++pos_;  // consume '('
      item.kind = upper == "PREDICT" ? ItemKind::kPredict
                                     : ItemKind::kPredictClass;
      RELSERVE_ASSIGN_OR_RETURN(item.model, ExpectIdentifier());
      item.feature_col = "features";
      if (ConsumeSymbol(",")) {
        RELSERVE_ASSIGN_OR_RETURN(item.feature_col, ExpectIdentifier());
      }
      RELSERVE_RETURN_NOT_OK(ExpectSymbol(")"));
    } else {
      item.kind = ItemKind::kColumn;
      item.column = std::move(name);
    }
    if (ConsumeKeyword("AS")) {
      RELSERVE_ASSIGN_OR_RETURN(item.alias, ExpectIdentifier());
    }
    return item;
  }

  Result<Operand> ParseOperand() {
    const Token& tok = Peek();
    Operand operand;
    switch (tok.kind) {
      case TokenKind::kIdentifier:
        operand.is_column = true;
        operand.column = Advance().text;
        return operand;
      case TokenKind::kNumber: {
        const std::string text = Advance().text;
        if (text.find('.') != std::string::npos) {
          operand.literal = Value(std::atof(text.c_str()));
        } else {
          operand.literal =
              Value(static_cast<int64_t>(std::atoll(text.c_str())));
        }
        return operand;
      }
      case TokenKind::kString:
        operand.literal = Value(Advance().text);
        return operand;
      default:
        return Status::InvalidArgument("expected operand, got '" +
                                       tok.text + "'");
    }
  }

  Result<PredicatePtr> ParseComparison() {
    if (ConsumeKeyword("NOT")) {
      RELSERVE_ASSIGN_OR_RETURN(PredicatePtr inner, ParseComparison());
      auto p = std::make_unique<Predicate>();
      p->kind = PredicateKind::kNot;
      p->left = std::move(inner);
      return p;
    }
    if (ConsumeSymbol("(")) {
      RELSERVE_ASSIGN_OR_RETURN(PredicatePtr inner, ParseOr());
      RELSERVE_RETURN_NOT_OK(ExpectSymbol(")"));
      return inner;
    }
    auto p = std::make_unique<Predicate>();
    p->kind = PredicateKind::kComparison;
    RELSERVE_ASSIGN_OR_RETURN(p->comparison.left, ParseOperand());
    const Token op = Advance();
    if (op.kind != TokenKind::kSymbol) {
      return Status::InvalidArgument("expected comparison operator");
    }
    if (op.text == "=") {
      p->comparison.op = CompareOp::kEq;
    } else if (op.text == "!=") {
      p->comparison.op = CompareOp::kNe;
    } else if (op.text == "<") {
      p->comparison.op = CompareOp::kLt;
    } else if (op.text == "<=") {
      p->comparison.op = CompareOp::kLe;
    } else if (op.text == ">") {
      p->comparison.op = CompareOp::kGt;
    } else if (op.text == ">=") {
      p->comparison.op = CompareOp::kGe;
    } else {
      return Status::InvalidArgument("unknown operator '" + op.text +
                                     "'");
    }
    RELSERVE_ASSIGN_OR_RETURN(p->comparison.right, ParseOperand());
    return p;
  }

  Result<PredicatePtr> ParseAnd() {
    RELSERVE_ASSIGN_OR_RETURN(PredicatePtr left, ParseComparison());
    while (ConsumeKeyword("AND")) {
      RELSERVE_ASSIGN_OR_RETURN(PredicatePtr right, ParseComparison());
      auto p = std::make_unique<Predicate>();
      p->kind = PredicateKind::kAnd;
      p->left = std::move(left);
      p->right = std::move(right);
      left = std::move(p);
    }
    return left;
  }

  Result<PredicatePtr> ParseOr() {
    RELSERVE_ASSIGN_OR_RETURN(PredicatePtr left, ParseAnd());
    while (ConsumeKeyword("OR")) {
      RELSERVE_ASSIGN_OR_RETURN(PredicatePtr right, ParseAnd());
      auto p = std::make_unique<Predicate>();
      p->kind = PredicateKind::kOr;
      p->left = std::move(left);
      p->right = std::move(right);
      left = std::move(p);
    }
    return left;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<SelectStatement> Parse(const std::string& query) {
  RELSERVE_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(query));
  Parser parser(std::move(tokens));
  return parser.ParseSelect();
}

Result<Statement> ParseStatement(const std::string& query) {
  RELSERVE_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(query));
  Parser parser(std::move(tokens));
  return parser.ParseStatement();
}

}  // namespace sql
}  // namespace relserve
