// Executes the SQL inference dialect against a ServingSession: binds
// the statement to catalog schemas, runs the relational pipeline
// (scan -> filter -> limit), and evaluates PREDICT / PREDICT_CLASS
// items by batching the qualifying rows through the deployed model —
// the "inference query" of the paper, end to end inside the database.

#ifndef RELSERVE_SQL_QUERY_EXECUTOR_H_
#define RELSERVE_SQL_QUERY_EXECUTOR_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "relational/row.h"
#include "relational/schema.h"
#include "serving/serving_session.h"

namespace relserve {
namespace sql {

struct QueryResult {
  Schema schema;
  std::vector<Row> rows;

  // Plain-text table rendering (up to max_rows rows).
  std::string ToString(int64_t max_rows = 20) const;
};

// Parses and executes one SELECT. Models referenced by PREDICT items
// must be registered; if not yet deployed they are deployed
// adaptively for the qualifying batch size.
Result<QueryResult> ExecuteQuery(ServingSession* session,
                                 const std::string& query);

// Any supported statement: SELECT (rows), EXPLAIN SELECT (the bound
// plan, including each referenced model's per-operator representation
// decisions), CREATE TABLE, INSERT INTO ... VALUES, UPDATE ... SET,
// DELETE FROM. DML commits atomically through the session's WAL/MVCC
// write path: a WAL append or fsync failure aborts the statement with
// its typed Status and zero rows applied.
struct StatementResult {
  bool has_rows = false;
  QueryResult query;    // when has_rows
  std::string message;  // DDL/DML confirmations and EXPLAIN text
  int64_t rows_affected = 0;  // DML only
};

Result<StatementResult> ExecuteStatement(ServingSession* session,
                                         const std::string& sql);

}  // namespace sql
}  // namespace relserve

#endif  // RELSERVE_SQL_QUERY_EXECUTOR_H_
