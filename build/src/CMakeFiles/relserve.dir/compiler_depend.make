# Empty compiler generated dependencies file for relserve.
# This may be replaced when dependencies are built.
