file(REMOVE_RECURSE
  "librelserve.a"
)
