
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/hnsw_index.cc" "src/CMakeFiles/relserve.dir/cache/hnsw_index.cc.o" "gcc" "src/CMakeFiles/relserve.dir/cache/hnsw_index.cc.o.d"
  "/root/repo/src/cache/ivf_index.cc" "src/CMakeFiles/relserve.dir/cache/ivf_index.cc.o" "gcc" "src/CMakeFiles/relserve.dir/cache/ivf_index.cc.o.d"
  "/root/repo/src/cache/lsh_index.cc" "src/CMakeFiles/relserve.dir/cache/lsh_index.cc.o" "gcc" "src/CMakeFiles/relserve.dir/cache/lsh_index.cc.o.d"
  "/root/repo/src/cache/result_cache.cc" "src/CMakeFiles/relserve.dir/cache/result_cache.cc.o" "gcc" "src/CMakeFiles/relserve.dir/cache/result_cache.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/relserve.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/relserve.dir/common/logging.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/relserve.dir/common/status.cc.o" "gcc" "src/CMakeFiles/relserve.dir/common/status.cc.o.d"
  "/root/repo/src/engine/block_ops.cc" "src/CMakeFiles/relserve.dir/engine/block_ops.cc.o" "gcc" "src/CMakeFiles/relserve.dir/engine/block_ops.cc.o.d"
  "/root/repo/src/engine/connector.cc" "src/CMakeFiles/relserve.dir/engine/connector.cc.o" "gcc" "src/CMakeFiles/relserve.dir/engine/connector.cc.o.d"
  "/root/repo/src/engine/external_runtime.cc" "src/CMakeFiles/relserve.dir/engine/external_runtime.cc.o" "gcc" "src/CMakeFiles/relserve.dir/engine/external_runtime.cc.o.d"
  "/root/repo/src/engine/hybrid_executor.cc" "src/CMakeFiles/relserve.dir/engine/hybrid_executor.cc.o" "gcc" "src/CMakeFiles/relserve.dir/engine/hybrid_executor.cc.o.d"
  "/root/repo/src/engine/pipeline_executor.cc" "src/CMakeFiles/relserve.dir/engine/pipeline_executor.cc.o" "gcc" "src/CMakeFiles/relserve.dir/engine/pipeline_executor.cc.o.d"
  "/root/repo/src/engine/prepared_model.cc" "src/CMakeFiles/relserve.dir/engine/prepared_model.cc.o" "gcc" "src/CMakeFiles/relserve.dir/engine/prepared_model.cc.o.d"
  "/root/repo/src/engine/trainer.cc" "src/CMakeFiles/relserve.dir/engine/trainer.cc.o" "gcc" "src/CMakeFiles/relserve.dir/engine/trainer.cc.o.d"
  "/root/repo/src/graph/model.cc" "src/CMakeFiles/relserve.dir/graph/model.cc.o" "gcc" "src/CMakeFiles/relserve.dir/graph/model.cc.o.d"
  "/root/repo/src/graph/model_io.cc" "src/CMakeFiles/relserve.dir/graph/model_io.cc.o" "gcc" "src/CMakeFiles/relserve.dir/graph/model_io.cc.o.d"
  "/root/repo/src/graph/model_zoo.cc" "src/CMakeFiles/relserve.dir/graph/model_zoo.cc.o" "gcc" "src/CMakeFiles/relserve.dir/graph/model_zoo.cc.o.d"
  "/root/repo/src/kernels/kernels.cc" "src/CMakeFiles/relserve.dir/kernels/kernels.cc.o" "gcc" "src/CMakeFiles/relserve.dir/kernels/kernels.cc.o.d"
  "/root/repo/src/optimizer/decomposition.cc" "src/CMakeFiles/relserve.dir/optimizer/decomposition.cc.o" "gcc" "src/CMakeFiles/relserve.dir/optimizer/decomposition.cc.o.d"
  "/root/repo/src/optimizer/optimizer.cc" "src/CMakeFiles/relserve.dir/optimizer/optimizer.cc.o" "gcc" "src/CMakeFiles/relserve.dir/optimizer/optimizer.cc.o.d"
  "/root/repo/src/relational/expression.cc" "src/CMakeFiles/relserve.dir/relational/expression.cc.o" "gcc" "src/CMakeFiles/relserve.dir/relational/expression.cc.o.d"
  "/root/repo/src/relational/operator.cc" "src/CMakeFiles/relserve.dir/relational/operator.cc.o" "gcc" "src/CMakeFiles/relserve.dir/relational/operator.cc.o.d"
  "/root/repo/src/relational/row.cc" "src/CMakeFiles/relserve.dir/relational/row.cc.o" "gcc" "src/CMakeFiles/relserve.dir/relational/row.cc.o.d"
  "/root/repo/src/relational/schema.cc" "src/CMakeFiles/relserve.dir/relational/schema.cc.o" "gcc" "src/CMakeFiles/relserve.dir/relational/schema.cc.o.d"
  "/root/repo/src/relational/value.cc" "src/CMakeFiles/relserve.dir/relational/value.cc.o" "gcc" "src/CMakeFiles/relserve.dir/relational/value.cc.o.d"
  "/root/repo/src/resource/device_model.cc" "src/CMakeFiles/relserve.dir/resource/device_model.cc.o" "gcc" "src/CMakeFiles/relserve.dir/resource/device_model.cc.o.d"
  "/root/repo/src/resource/memory_tracker.cc" "src/CMakeFiles/relserve.dir/resource/memory_tracker.cc.o" "gcc" "src/CMakeFiles/relserve.dir/resource/memory_tracker.cc.o.d"
  "/root/repo/src/resource/thread_pool.cc" "src/CMakeFiles/relserve.dir/resource/thread_pool.cc.o" "gcc" "src/CMakeFiles/relserve.dir/resource/thread_pool.cc.o.d"
  "/root/repo/src/serving/join_pipeline.cc" "src/CMakeFiles/relserve.dir/serving/join_pipeline.cc.o" "gcc" "src/CMakeFiles/relserve.dir/serving/join_pipeline.cc.o.d"
  "/root/repo/src/serving/model_versions.cc" "src/CMakeFiles/relserve.dir/serving/model_versions.cc.o" "gcc" "src/CMakeFiles/relserve.dir/serving/model_versions.cc.o.d"
  "/root/repo/src/serving/serving_session.cc" "src/CMakeFiles/relserve.dir/serving/serving_session.cc.o" "gcc" "src/CMakeFiles/relserve.dir/serving/serving_session.cc.o.d"
  "/root/repo/src/sql/lexer.cc" "src/CMakeFiles/relserve.dir/sql/lexer.cc.o" "gcc" "src/CMakeFiles/relserve.dir/sql/lexer.cc.o.d"
  "/root/repo/src/sql/parser.cc" "src/CMakeFiles/relserve.dir/sql/parser.cc.o" "gcc" "src/CMakeFiles/relserve.dir/sql/parser.cc.o.d"
  "/root/repo/src/sql/query_executor.cc" "src/CMakeFiles/relserve.dir/sql/query_executor.cc.o" "gcc" "src/CMakeFiles/relserve.dir/sql/query_executor.cc.o.d"
  "/root/repo/src/storage/block_store.cc" "src/CMakeFiles/relserve.dir/storage/block_store.cc.o" "gcc" "src/CMakeFiles/relserve.dir/storage/block_store.cc.o.d"
  "/root/repo/src/storage/buffer_pool.cc" "src/CMakeFiles/relserve.dir/storage/buffer_pool.cc.o" "gcc" "src/CMakeFiles/relserve.dir/storage/buffer_pool.cc.o.d"
  "/root/repo/src/storage/catalog.cc" "src/CMakeFiles/relserve.dir/storage/catalog.cc.o" "gcc" "src/CMakeFiles/relserve.dir/storage/catalog.cc.o.d"
  "/root/repo/src/storage/dedup.cc" "src/CMakeFiles/relserve.dir/storage/dedup.cc.o" "gcc" "src/CMakeFiles/relserve.dir/storage/dedup.cc.o.d"
  "/root/repo/src/storage/disk_manager.cc" "src/CMakeFiles/relserve.dir/storage/disk_manager.cc.o" "gcc" "src/CMakeFiles/relserve.dir/storage/disk_manager.cc.o.d"
  "/root/repo/src/storage/quantize.cc" "src/CMakeFiles/relserve.dir/storage/quantize.cc.o" "gcc" "src/CMakeFiles/relserve.dir/storage/quantize.cc.o.d"
  "/root/repo/src/storage/table_heap.cc" "src/CMakeFiles/relserve.dir/storage/table_heap.cc.o" "gcc" "src/CMakeFiles/relserve.dir/storage/table_heap.cc.o.d"
  "/root/repo/src/tensor/shape.cc" "src/CMakeFiles/relserve.dir/tensor/shape.cc.o" "gcc" "src/CMakeFiles/relserve.dir/tensor/shape.cc.o.d"
  "/root/repo/src/tensor/tensor.cc" "src/CMakeFiles/relserve.dir/tensor/tensor.cc.o" "gcc" "src/CMakeFiles/relserve.dir/tensor/tensor.cc.o.d"
  "/root/repo/src/tensor/tensor_block.cc" "src/CMakeFiles/relserve.dir/tensor/tensor_block.cc.o" "gcc" "src/CMakeFiles/relserve.dir/tensor/tensor_block.cc.o.d"
  "/root/repo/src/workloads/datasets.cc" "src/CMakeFiles/relserve.dir/workloads/datasets.cc.o" "gcc" "src/CMakeFiles/relserve.dir/workloads/datasets.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
