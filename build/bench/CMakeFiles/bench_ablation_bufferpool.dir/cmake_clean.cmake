file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_bufferpool.dir/bench_ablation_bufferpool.cc.o"
  "CMakeFiles/bench_ablation_bufferpool.dir/bench_ablation_bufferpool.cc.o.d"
  "bench_ablation_bufferpool"
  "bench_ablation_bufferpool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_bufferpool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
