# Empty dependencies file for bench_fig2_ffnn.
# This may be replaced when dependencies are built.
