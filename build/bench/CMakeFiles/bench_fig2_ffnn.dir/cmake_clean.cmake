file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_ffnn.dir/bench_fig2_ffnn.cc.o"
  "CMakeFiles/bench_fig2_ffnn.dir/bench_fig2_ffnn.cc.o.d"
  "bench_fig2_ffnn"
  "bench_fig2_ffnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_ffnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
