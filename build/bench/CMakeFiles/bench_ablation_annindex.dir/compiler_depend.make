# Empty compiler generated dependencies file for bench_ablation_annindex.
# This may be replaced when dependencies are built.
