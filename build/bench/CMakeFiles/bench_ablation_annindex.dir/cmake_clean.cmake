file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_annindex.dir/bench_ablation_annindex.cc.o"
  "CMakeFiles/bench_ablation_annindex.dir/bench_ablation_annindex.cc.o.d"
  "bench_ablation_annindex"
  "bench_ablation_annindex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_annindex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
