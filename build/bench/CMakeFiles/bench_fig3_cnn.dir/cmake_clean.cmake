file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_cnn.dir/bench_fig3_cnn.cc.o"
  "CMakeFiles/bench_fig3_cnn.dir/bench_fig3_cnn.cc.o.d"
  "bench_fig3_cnn"
  "bench_fig3_cnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_cnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
