# Empty dependencies file for bench_fig3_cnn.
# This may be replaced when dependencies are built.
