# Empty dependencies file for in_database_training.
# This may be replaced when dependencies are built.
