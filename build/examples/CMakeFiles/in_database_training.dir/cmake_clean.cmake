file(REMOVE_RECURSE
  "CMakeFiles/in_database_training.dir/in_database_training.cc.o"
  "CMakeFiles/in_database_training.dir/in_database_training.cc.o.d"
  "in_database_training"
  "in_database_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/in_database_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
