file(REMOVE_RECURSE
  "CMakeFiles/sql_inference.dir/sql_inference.cc.o"
  "CMakeFiles/sql_inference.dir/sql_inference.cc.o.d"
  "sql_inference"
  "sql_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sql_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
