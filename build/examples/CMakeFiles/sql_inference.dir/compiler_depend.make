# Empty compiler generated dependencies file for sql_inference.
# This may be replaced when dependencies are built.
