file(REMOVE_RECURSE
  "CMakeFiles/cached_serving.dir/cached_serving.cc.o"
  "CMakeFiles/cached_serving.dir/cached_serving.cc.o.d"
  "cached_serving"
  "cached_serving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cached_serving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
