# Empty compiler generated dependencies file for cached_serving.
# This may be replaced when dependencies are built.
