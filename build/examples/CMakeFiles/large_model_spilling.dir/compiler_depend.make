# Empty compiler generated dependencies file for large_model_spilling.
# This may be replaced when dependencies are built.
