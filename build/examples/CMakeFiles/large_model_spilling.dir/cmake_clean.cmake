file(REMOVE_RECURSE
  "CMakeFiles/large_model_spilling.dir/large_model_spilling.cc.o"
  "CMakeFiles/large_model_spilling.dir/large_model_spilling.cc.o.d"
  "large_model_spilling"
  "large_model_spilling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/large_model_spilling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
