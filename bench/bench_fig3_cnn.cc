// Figure 3 of the paper: CNN inference latency over RDBMS-managed
// data — in-database serving vs the DL-centric architecture, for the
// small conv model (DeepBench-CONV1) that fits the memory threshold.

#include <cstdio>
#include <cstring>
#include <vector>

#include "bench_util.h"
#include "engine/external_runtime.h"
#include "graph/model_zoo.h"
#include "relational/row.h"
#include "serving/serving_session.h"
#include "workloads/datasets.h"

namespace relserve {
namespace {

Status RunModel(const zoo::ConvSpec& spec, int64_t batch, int repeats) {
  ServingConfig config;
  config.working_memory_bytes = 8LL << 30;
  config.memory_threshold_bytes = 1LL << 30;
  ServingSession session(config);

  // Images stored as one FLOAT_VECTOR feature column per row.
  const int64_t width = spec.image_h * spec.image_w * spec.image_c;
  RELSERVE_ASSIGN_OR_RETURN(TableInfo * table,
                            session.CreateTable(
                                "images",
                                workloads::FeatureTableSchema()));
  RELSERVE_RETURN_NOT_OK(
      workloads::FillFeatureTable(table, batch, width, 7));
  RELSERVE_ASSIGN_OR_RETURN(Model model, zoo::BuildFromSpec(spec, 1));
  RELSERVE_RETURN_NOT_OK(session.RegisterModel(std::move(model)));
  RELSERVE_ASSIGN_OR_RETURN(
      const InferencePlan* plan,
      session.Deploy(spec.name, ServingMode::kAdaptive, batch));

  ExternalRuntime runtime("sim-dl-framework", 8LL << 30,
                          session.thread_pool());
  RELSERVE_RETURN_NOT_OK(session.OffloadModel(spec.name, &runtime));

  RELSERVE_ASSIGN_OR_RETURN(
      double ours, bench::TimeBest(repeats, [&]() -> Status {
        RELSERVE_ASSIGN_OR_RETURN(ExecOutput out,
                                  session.Predict(spec.name, "images"));
        RELSERVE_ASSIGN_OR_RETURN(Tensor t,
                                  out.ToTensor(session.exec_context()));
        (void)t;
        return Status::OK();
      }));
  RELSERVE_ASSIGN_OR_RETURN(
      double dl, bench::TimeBest(repeats, [&]() -> Status {
        RELSERVE_ASSIGN_OR_RETURN(
            Tensor t, session.PredictViaRuntime(spec.name, "images"));
        (void)t;
        return Status::OK();
      }));

  char ours_s[32], dl_s[32], speedup[32];
  std::snprintf(ours_s, sizeof(ours_s), "%.4f", ours);
  std::snprintf(dl_s, sizeof(dl_s), "%.4f", dl);
  std::snprintf(speedup, sizeof(speedup), "%.2fx", dl / ours);
  bench::PrintRow({spec.name, std::to_string(batch),
                   plan->AllUdf() ? "udf-centric" : "mixed", ours_s,
                   dl_s, speedup});
  return Status::OK();
}

int Run() {
  const int repeats = bench::RepeatsFromEnv();
  std::printf(
      "Figure 3: CNN inference latency over RDBMS-managed data\n"
      "ours = in-database (adaptive), dl-centric = connector + "
      "external runtime\n\n");
  bench::PrintRow({"Model", "Batch", "OursRepr", "Ours(s)",
                   "DL-centric(s)", "Speedup"});
  bench::PrintRule(6);
  const zoo::ConvSpec deepbench = zoo::Table2ConvSpecs(1.0)[0];
  for (int64_t batch : {1, 8, 32}) {
    Status s = RunModel(deepbench, batch, repeats);
    if (!s.ok()) {
      std::fprintf(stderr, "batch=%lld: %s\n",
                   static_cast<long long>(batch),
                   s.ToString().c_str());
      return 1;
    }
  }
  std::printf(
      "\nExpected shape (paper): in-database serving reduces latency "
      "for the small\nCNN because the image export over the connector "
      "(112x112x64 floats per row)\ndominates the 1x1-kernel conv "
      "compute.\n");
  return 0;
}

}  // namespace
}  // namespace relserve

int main() { return relserve::Run(); }
