// Ablation A2 (DESIGN.md): tensor block size for relation-centric
// execution. Small blocks mean fine-grained spilling but more
// join/aggregate bookkeeping and worse GEMM efficiency; large blocks
// amortize better but raise the per-block working set.

#include <cstdio>

#include "bench_util.h"
#include "graph/model.h"
#include "serving/serving_session.h"
#include "workloads/datasets.h"

namespace relserve {
namespace {

int Run() {
  const int repeats = bench::RepeatsFromEnv();
  const int64_t batch = 256;

  std::printf("Ablation A2: block size sweep "
              "(relation-centric FFNN 2048/512/64, batch %lld)\n\n",
              static_cast<long long>(batch));
  bench::PrintRow({"BlockSize", "BlocksRW", "PeakArena",
                   "Latency(s)"});
  bench::PrintRule(4);

  for (int64_t block : {64, 128, 256, 512, 1024}) {
    ServingConfig config;
    config.working_memory_bytes = 2LL << 30;
    config.block_rows = block;
    config.block_cols = block;
    ServingSession session(config);
    auto table =
        session.CreateTable("t", workloads::FeatureTableSchema());
    if (!table.ok()) return 1;
    if (!workloads::FillFeatureTable(*table, batch, 2048, 1).ok()) {
      return 1;
    }
    auto model = BuildFFNN("m", {2048, 512, 64}, 1);
    if (!model.ok() ||
        !session.RegisterModel(std::move(*model)).ok()) {
      return 1;
    }
    if (!session.Deploy("m", ServingMode::kForceRelational, batch)
             .ok()) {
      return 1;
    }
    session.working_memory()->ResetPeak();
    auto latency = bench::TimeBest(repeats, [&]() -> Status {
      RELSERVE_ASSIGN_OR_RETURN(ExecOutput out,
                                session.Predict("m", "t"));
      (void)out;
      return Status::OK();
    });
    const ExecStats& stats = session.exec_context()->stats;
    bench::PrintRow(
        {std::to_string(block) + "x" + std::to_string(block),
         std::to_string(stats.blocks_read + stats.blocks_written),
         bench::HumanBytes(session.working_memory()->peak_bytes()),
         bench::Cell(latency)});
  }
  std::printf(
      "\nExpected shape: latency falls as blocks grow (fewer, "
      "larger GEMMs),\nwhile the peak arena working set rises with "
      "the block size.\n");
  return 0;
}

}  // namespace
}  // namespace relserve

int main() { return relserve::Run(); }
