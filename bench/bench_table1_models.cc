// Table 1 of the paper: the fully connected model zoo, plus what the
// paper's Sec. 7.1 rule-based optimizer decides for each operator.
// Prints the per-model geometry, weight footprint, per-operator memory
// estimate at the paper's batch sizes, and the chosen representation.

#include <cstdio>

#include "bench_util.h"
#include "graph/model_zoo.h"
#include "optimizer/optimizer.h"

namespace relserve {
namespace {

int Run() {
  const double scale = bench::ScaleFromEnv();
  std::printf("Table 1: Fully Connected (FC) models, scale=%.3f\n"
              "(threshold: paper's 2 GiB for the unscaled small "
              "models; 2 GiB x scale for the scaled Amazon-14k-FC, "
              "preserving the threshold/footprint ratio)\n\n",
              scale);
  bench::PrintRow({"Model", "Features", "Hidden", "Outputs",
                   "WeightBytes", "MaxOpEstimate", "Decision"});
  bench::PrintRule(7);

  for (const zoo::FcSpec& spec : zoo::Table1FcSpecs(scale)) {
    // Only Amazon-14k-FC is geometrically scaled; its threshold
    // scales with it so the paper's decision is preserved.
    const bool scaled_model = spec.name == "Amazon-14k-FC";
    const int64_t threshold =
        scaled_model ? static_cast<int64_t>(2.0 * scale * (1LL << 30))
                     : 2LL << 30;
    RuleBasedOptimizer optimizer(threshold);
    auto model = zoo::BuildFromSpec(spec, /*seed=*/1);
    if (!model.ok()) {
      std::fprintf(stderr, "build %s: %s\n", spec.name.c_str(),
                   model.status().ToString().c_str());
      return 1;
    }
    const int64_t batch = 1000;
    auto plan = optimizer.Optimize(*model, batch);
    if (!plan.ok()) {
      std::fprintf(stderr, "optimize %s: %s\n", spec.name.c_str(),
                   plan.status().ToString().c_str());
      return 1;
    }
    int64_t max_estimate = 0;
    bool any_relational = false;
    for (const NodeDecision& d : plan->decisions) {
      max_estimate = std::max(max_estimate, d.estimated_bytes);
      any_relational |= d.repr == Repr::kRelational;
    }
    bench::PrintRow({spec.name, std::to_string(spec.dims[0]),
                     std::to_string(spec.dims[1]),
                     std::to_string(spec.dims[2]),
                     bench::HumanBytes(model->TotalWeightBytes()),
                     bench::HumanBytes(max_estimate),
                     any_relational ? "relation-centric"
                                    : "udf-centric"});
  }
  std::printf(
      "\nExpected shape (paper): the three small models stay "
      "udf-centric;\nAmazon-14k-FC exceeds the threshold and is "
      "lowered to relation-centric.\n");
  return 0;
}

}  // namespace
}  // namespace relserve

int main() { return relserve::Run(); }
