// Sec. 7.2.2 of the paper: HNSW-indexed inference result caching.
//
// Two models, exactly as in the paper:
//   - Caching-FFNN: fc 128/1024/2048/64 -> 10 over 784-dim inputs
//   - Caching-CNN:  conv 32x3x3 -> conv 16x3x3 -> fc 64 -> fc 10
// over MNIST-like clustered 28x28 requests. The cache is warmed with
// one request stream; a second stream from the same clusters is then
// served. Ground truth for accuracy is the model's own prediction at
// each cluster center (the class the model assigns to the latent
// "digit"), so the accuracy drop from approximate cache hits is
// measured against a well-defined reference, exactly like the paper's
// trained-model accuracy drop. Paper: 7.3x speedup / 97.74 -> 95.26
// (FFNN); 10.3x / 98.75 -> 93.65 (CNN).

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "graph/model_zoo.h"
#include "kernels/kernels.h"
#include "serving/serving_session.h"
#include "workloads/datasets.h"

namespace relserve {
namespace {

constexpr int64_t kDim = 28 * 28;
constexpr int kClasses = 10;
constexpr uint64_t kCentersSeed = 99;

double Accuracy(const std::vector<int64_t>& pred,
                const std::vector<int64_t>& truth) {
  int64_t same = 0;
  for (size_t i = 0; i < pred.size(); ++i) same += pred[i] == truth[i];
  return 100.0 * same / pred.size();
}

Status RunOne(const std::string& name, Model model, bool is_image,
              int repeats) {
  ServingConfig config;
  config.working_memory_bytes = 4LL << 30;
  ServingSession session(config);

  const int64_t warm_n = 2000, serve_n = 2000;
  RELSERVE_ASSIGN_OR_RETURN(
      workloads::LabeledData warm,
      workloads::GenClusteredData(warm_n, kDim, kClasses, 0.03f, 21,
                                  nullptr, kCentersSeed));
  RELSERVE_ASSIGN_OR_RETURN(
      workloads::LabeledData serve,
      workloads::GenClusteredData(serve_n, kDim, kClasses, 0.03f, 22,
                                  nullptr, kCentersSeed));

  const std::string model_name = model.name();
  RELSERVE_RETURN_NOT_OK(session.RegisterModel(std::move(model)));
  RELSERVE_RETURN_NOT_OK(
      session.Deploy(model_name, ServingMode::kAdaptive, serve_n)
          .status());

  auto shape_input = [&](const Tensor& flat) -> Result<Tensor> {
    if (!is_image) return flat;
    return flat.Reshape(Shape{flat.shape().dim(0), 28, 28, 1});
  };
  auto predict_labels =
      [&](const Tensor& flat) -> Result<std::vector<int64_t>> {
    RELSERVE_ASSIGN_OR_RETURN(Tensor in, shape_input(flat));
    RELSERVE_ASSIGN_OR_RETURN(ExecOutput out,
                              session.PredictBatch(model_name, in));
    RELSERVE_ASSIGN_OR_RETURN(Tensor pred,
                              out.ToTensor(session.exec_context()));
    return kernels::ArgMaxRows(pred);
  };

  // Ground truth: the model's class for each cluster center.
  RELSERVE_ASSIGN_OR_RETURN(std::vector<int64_t> center_class,
                            predict_labels(serve.centers));
  auto truth_of = [&](const workloads::LabeledData& data) {
    std::vector<int64_t> truth(data.labels.size());
    for (size_t i = 0; i < truth.size(); ++i) {
      truth[i] = center_class[data.labels[i]];
    }
    return truth;
  };
  const std::vector<int64_t> serve_truth = truth_of(serve);

  // Full-inference baseline.
  RELSERVE_ASSIGN_OR_RETURN(Tensor serve_in,
                            shape_input(serve.features));
  RELSERVE_ASSIGN_OR_RETURN(
      double full_latency, bench::TimeBest(repeats, [&]() -> Status {
        RELSERVE_ASSIGN_OR_RETURN(
            ExecOutput out, session.PredictBatch(model_name, serve_in));
        RELSERVE_ASSIGN_OR_RETURN(Tensor t,
                                  out.ToTensor(session.exec_context()));
        (void)t;
        return Status::OK();
      }));
  RELSERVE_ASSIGN_OR_RETURN(std::vector<int64_t> base_pred,
                            predict_labels(serve.features));

  // Warm the HNSW cache, then serve the second stream through it.
  ApproxResultCache::Config cache_config;
  cache_config.max_distance = 2.5f;  // within-cluster radius at this
                                     // noise level; cross-cluster
                                     // distances are ~10x larger
  // Clusters are ~10 apart vs ~1.2 within, so a tiny beam finds the
  // right cluster; this keeps the lookup far below model inference.
  cache_config.hnsw.max_links = 8;
  cache_config.hnsw.ef_construction = 32;
  cache_config.hnsw.ef_search = 4;
  RELSERVE_RETURN_NOT_OK(
      session.EnableApproxCache(model_name, kDim, cache_config));
  RELSERVE_ASSIGN_OR_RETURN(
      Tensor warmed,
      session.PredictWithCache(model_name, warm.features));
  (void)warmed;

  RELSERVE_ASSIGN_OR_RETURN(
      double cached_latency, bench::TimeBest(repeats, [&]() -> Status {
        RELSERVE_ASSIGN_OR_RETURN(
            Tensor t,
            session.PredictWithCache(model_name, serve.features));
        (void)t;
        return Status::OK();
      }));
  RELSERVE_ASSIGN_OR_RETURN(ApproxResultCache * cache,
                            session.GetApproxCache(model_name));
  const CacheStats before = cache->stats();
  RELSERVE_ASSIGN_OR_RETURN(
      Tensor cached_out,
      session.PredictWithCache(model_name, serve.features));
  const std::vector<int64_t> cached_pred =
      kernels::ArgMaxRows(cached_out);
  const CacheStats after = cache->stats();
  const double serve_hit_rate =
      static_cast<double>(after.hits - before.hits) /
      (after.lookups - before.lookups);
  char full_s[32], cached_s[32], sp[32], acc0[32], acc1[32], hr[32];
  std::snprintf(full_s, sizeof(full_s), "%.3f", full_latency);
  std::snprintf(cached_s, sizeof(cached_s), "%.3f", cached_latency);
  std::snprintf(sp, sizeof(sp), "%.1fx", full_latency / cached_latency);
  std::snprintf(acc0, sizeof(acc0), "%.2f%%",
                Accuracy(base_pred, serve_truth));
  std::snprintf(acc1, sizeof(acc1), "%.2f%%",
                Accuracy(cached_pred, serve_truth));
  std::snprintf(hr, sizeof(hr), "%.0f%%", 100.0 * serve_hit_rate);
  bench::PrintRow({name, full_s, cached_s, sp, acc0, acc1, hr}, 14);
  return Status::OK();
}

int Run() {
  const int repeats = bench::RepeatsFromEnv(1);
  std::printf("Sec 7.2.2: HNSW inference-result caching "
              "(2000 warm + 2000 served requests, 28x28 inputs)\n\n");
  bench::PrintRow({"Model", "Full(s)", "Cached(s)", "Speedup",
                   "AccBefore", "AccAfter", "HitRate"},
                  14);
  bench::PrintRule(7, 14);

  {
    auto model = zoo::BuildCachingFfnn(4);
    if (!model.ok()) return 1;
    Status s = RunOne("Caching-FFNN", std::move(*model),
                      /*is_image=*/false, repeats);
    if (!s.ok()) {
      std::fprintf(stderr, "ffnn: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  {
    auto model = zoo::BuildCachingCnn(4);
    if (!model.ok()) return 1;
    Status s = RunOne("Caching-CNN", std::move(*model),
                      /*is_image=*/true, repeats);
    if (!s.ok()) {
      std::fprintf(stderr, "cnn: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  std::printf(
      "\nExpected shape (paper): large speedup (paper: 7.3x FFNN, "
      "10.3x CNN) with a\nfew points of accuracy loss (97.74->95.26 "
      "and 98.75->93.65) — the cache trades\naccuracy for latency, "
      "motivating the SLA-aware Monte Carlo policy.\n");
  return 0;
}

}  // namespace
}  // namespace relserve

int main() { return relserve::Run(); }
