// Sec. 7.2.1 of the paper: model decomposition and push-down.
//
// Pipeline: similarity-join two vertically partitioned feature tables
// (Bosch-like: 968 features split 484 + 484), then run an FFNN with a
// 256-neuron hidden layer over the joined features. The rewrite pushes
// the two halves of the first-layer multiplication below the join, so
// the join moves 256-wide partial activations instead of 968-wide raw
// features and never recomputes the first layer on fanned-out rows.
// The paper reports a 5.7x speedup on 1.18 M rows.

#include <cstdio>

#include "bench_util.h"
#include "graph/model_zoo.h"
#include "serving/join_pipeline.h"
#include "serving/serving_session.h"
#include "workloads/datasets.h"

namespace relserve {
namespace {

int Run() {
  const int repeats = bench::RepeatsFromEnv();
  const char* rows_env = std::getenv("RELSERVE_ROWS");
  const int64_t rows = rows_env != nullptr ? std::atoll(rows_env) : 5000;
  const int64_t features_each = 484;  // paper's split of 968

  ServingConfig config;
  config.working_memory_bytes = 8LL << 30;
  ServingSession session(config);

  auto d1 = session.CreateTable("d1", workloads::PartitionedTableSchema());
  auto d2 = session.CreateTable("d2", workloads::PartitionedTableSchema());
  if (!d1.ok() || !d2.ok()) return 1;
  // key_spread/epsilon tuned for a mild fan-out (each row matches its
  // partner and occasionally a neighbor), like an entity-resolution
  // style similarity join.
  if (!workloads::FillBoschPartitions(*d1, *d2, rows, features_each,
                                      /*key_spread=*/0.02, 11)
           .ok()) {
    return 1;
  }
  auto model = zoo::BuildBoschFfnn(2 * features_each, 3);
  if (!model.ok() || !session.RegisterModel(std::move(*model)).ok()) {
    return 1;
  }

  JoinInferenceSpec spec;
  spec.d1_table = "d1";
  spec.d2_table = "d2";
  spec.epsilon = 0.3;  // band width sets the join fan-out (~4x here)
  spec.model = "Bosch-FFNN";

  std::printf("Sec 7.2.1: model decomposition & push-down "
              "(rows=%lld, 484+484 features, FFNN 968/256/2)\n\n",
              static_cast<long long>(rows));

  int64_t matches = 0;
  auto naive = bench::TimeBest(repeats, [&]() -> Status {
    RELSERVE_ASSIGN_OR_RETURN(JoinInferenceResult r,
                              RunJoinThenInfer(&session, spec));
    matches = r.join_matches;
    return Status::OK();
  });
  auto decomposed = bench::TimeBest(repeats, [&]() -> Status {
    RELSERVE_ASSIGN_OR_RETURN(JoinInferenceResult r,
                              RunDecomposedInfer(&session, spec));
    matches = r.join_matches;
    return Status::OK();
  });
  if (!naive.ok() || !decomposed.ok()) {
    std::fprintf(stderr, "naive: %s, decomposed: %s\n",
                 naive.status().ToString().c_str(),
                 decomposed.status().ToString().c_str());
    return 1;
  }

  bench::PrintRow({"Plan", "JoinMatches", "Latency(s)", "Speedup"});
  bench::PrintRule(4);
  char n_s[32], d_s[32], sp[32];
  std::snprintf(n_s, sizeof(n_s), "%.3f", *naive);
  std::snprintf(d_s, sizeof(d_s), "%.3f", *decomposed);
  std::snprintf(sp, sizeof(sp), "%.2fx", *naive / *decomposed);
  bench::PrintRow({"join-then-infer", std::to_string(matches), n_s,
                   "1.00x"});
  bench::PrintRow({"decomposed+pushdown", std::to_string(matches), d_s,
                   sp});
  std::printf(
      "\nExpected shape (paper): decomposition wins (paper: 5.7x at "
      "1.18M rows);\nthe gap grows with join fan-out and feature "
      "width.\n");
  return 0;
}

}  // namespace
}  // namespace relserve

int main() { return relserve::Run(); }
