// Parallel scaling of relation-centric execution (morsel-driven
// ParallelFor over output blocks + concurrent buffer pool).
//
// Runs the same relation-centric FFNN inference at 1/2/4/8 worker
// threads under two pool configurations:
//   memory — the blocked working set fits in the buffer pool (the
//            morsels only contend on the page table mutex), and
//   spill  — a tiny pool forces constant eviction, so speedup also
//            depends on I/O overlapping compute (per-frame latches,
//            positioned pread/pwrite outside the global mutex).
//
// Each measurement is emitted both as a table row and as a standard
// BENCH JSON line (grep ^BENCH_JSON). Speedups are relative to the
// 1-thread run of the same configuration. Note: on a single-core
// machine the measured speedup is ~1.0 by construction; the numbers
// are only meaningful on real multi-core hardware.

#include <cstdio>
#include <string>
#include <thread>

#include "bench_util.h"
#include "graph/model.h"
#include "serving/serving_session.h"
#include "workloads/datasets.h"

namespace relserve {
namespace {

struct PoolConfig {
  const char* name;
  int64_t pages;
};

Result<double> RunOnce(const PoolConfig& pool_config, int threads,
                       int repeats, int64_t batch,
                       BufferPoolStats* stats_out,
                       int64_t* disk_reads, int64_t* disk_writes) {
  ServingConfig config;
  config.working_memory_bytes = 2LL << 30;
  config.buffer_pool_pages = pool_config.pages;
  config.block_rows = 256;
  config.block_cols = 256;
  config.num_threads = threads;
  ServingSession session(config);
  RELSERVE_ASSIGN_OR_RETURN(
      TableInfo * table,
      session.CreateTable("t", workloads::FeatureTableSchema()));
  RELSERVE_RETURN_NOT_OK(
      workloads::FillFeatureTable(table, batch, 2048, 1));
  RELSERVE_ASSIGN_OR_RETURN(Model model,
                            BuildFFNN("m", {2048, 512, 64}, 1));
  RELSERVE_RETURN_NOT_OK(session.RegisterModel(std::move(model)));
  RELSERVE_RETURN_NOT_OK(
      session.Deploy("m", ServingMode::kForceRelational, batch)
          .status());
  RELSERVE_ASSIGN_OR_RETURN(
      double latency, bench::TimeBest(repeats, [&]() -> Status {
        RELSERVE_ASSIGN_OR_RETURN(ExecOutput out,
                                  session.Predict("m", "t"));
        (void)out;
        return Status::OK();
      }));
  *stats_out = session.catalog()->pool()->stats();
  *disk_reads = session.catalog()->pool()->disk()->num_reads();
  *disk_writes = session.catalog()->pool()->disk()->num_writes();
  return latency;
}

int Run() {
  const int repeats = bench::RepeatsFromEnv(3);
  const int64_t batch = 256;
  const PoolConfig pool_configs[] = {
      // 4096 pages = 256 MiB: the blocked working set stays resident.
      {"memory", 4096},
      // 64 pages = 4 MiB: far below the working set; every block join
      // probe churns the pool.
      {"spill", 64},
  };
  const int thread_counts[] = {1, 2, 4, 8};

  std::printf(
      "Parallel scaling: relation-centric FFNN 2048/512/64, batch "
      "%lld, 256x256 blocks (hardware threads available: %u)\n\n",
      static_cast<long long>(batch),
      std::thread::hardware_concurrency());
  bench::PrintRow({"Config", "Threads", "Latency(s)", "Speedup",
                   "Evictions", "DiskReads", "DiskWrites"});
  bench::PrintRule(7);

  for (const PoolConfig& pool_config : pool_configs) {
    double baseline = 0.0;
    for (int threads : thread_counts) {
      BufferPoolStats stats;
      int64_t disk_reads = 0;
      int64_t disk_writes = 0;
      Result<double> latency =
          RunOnce(pool_config, threads, repeats, batch, &stats,
                  &disk_reads, &disk_writes);
      if (!latency.ok()) {
        std::printf("%s @ %d threads failed: %s\n", pool_config.name,
                    threads, latency.status().ToString().c_str());
        return 1;
      }
      if (threads == 1) baseline = *latency;
      const double speedup =
          *latency > 0.0 ? baseline / *latency : 0.0;
      char speedup_cell[32];
      std::snprintf(speedup_cell, sizeof(speedup_cell), "%.2fx",
                    speedup);
      bench::PrintRow({pool_config.name, std::to_string(threads),
                       bench::Cell(latency), speedup_cell,
                       std::to_string(stats.evictions),
                       std::to_string(disk_reads),
                       std::to_string(disk_writes)});
      bench::PrintBenchJson(
          "parallel_scaling",
          {{"config", bench::JsonStr(pool_config.name)},
           {"threads", std::to_string(threads)},
           {"pool_pages", std::to_string(pool_config.pages)},
           {"batch", std::to_string(batch)},
           {"latency_s", bench::JsonNum(*latency)},
           {"speedup_vs_1t", bench::JsonNum(speedup)},
           {"evictions", std::to_string(stats.evictions)},
           {"disk_reads", std::to_string(disk_reads)},
           {"disk_writes", std::to_string(disk_writes)}});
    }
    std::printf("\n");
  }
  std::printf(
      "Expected shape (multi-core hardware): memory-resident speedup "
      "approaches\nthe core count until out-block morsels run out; "
      "the spilling config scales\nless but still improves because "
      "page I/O overlaps other morsels' compute.\n");
  return 0;
}

}  // namespace
}  // namespace relserve

int main() { return relserve::Run(); }
