// Multi-tenant serving with cross-model weight deduplication.
//
// 50 fine-tuned variants of one FFNN — identical except for the
// classifier head, i.e. >=90% of each variant's weight blocks are
// byte-identical to the base — are deployed relation-centric into two
// sessions: one resolving weight blocks through the shared
// content-addressed PhysicalBlockIndex (the default), one with dedup
// off (naive per-model storage). We measure resident weight bytes,
// buffer-pool hit rate while round-robin serving every variant, and
// verify per-variant outputs are bit-identical across the two arms
// (dedup at tolerance 0 is byte-exact by construction).

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "graph/model.h"
#include "serving/serving_session.h"
#include "workloads/datasets.h"

namespace relserve {
namespace {

constexpr int kVariants = 50;
constexpr int64_t kBatch = 16;
const std::vector<int64_t> kDims = {256, 1024, 1024, 1024, 10};
constexpr int64_t kBlock = 256;
// The classifier head — the only weight fine-tuning touches here.
const char* kHeadWeight = "w3";

// Variant i of the base model: every weight cloned into a fresh
// buffer (each "checkpoint" is loaded separately — dedup must match
// by content, not by pointer), the head perturbed per variant.
Result<Model> MakeVariant(const Model& base, int i) {
  Model variant("ffnn@v" + std::to_string(i), base.sample_shape());
  for (const Node& node : base.nodes()) {
    if (node.kind == OpKind::kInput) {
      variant.AddNode(OpKind::kInput);
    } else {
      variant.AddNode(node.kind, node.weight_name, node.stride,
                      node.input);
    }
  }
  Rng rng(1000 + static_cast<uint64_t>(i));
  for (const auto& [name, weight] : base.weights()) {
    RELSERVE_ASSIGN_OR_RETURN(Tensor copy, weight.Clone());
    if (name == kHeadWeight && i > 0) {
      float* data = copy.data();
      for (int64_t e = 0; e < copy.NumElements(); ++e) {
        data[e] += rng.Normal(0.0f, 0.01f);
      }
    }
    RELSERVE_RETURN_NOT_OK(variant.AddWeight(name, std::move(copy)));
  }
  return variant;
}

struct ArmResult {
  int64_t logical_bytes = 0;
  int64_t physical_bytes = 0;
  int64_t shared_blocks = 0;
  int64_t total_blocks = 0;
  double hit_rate = 0.0;
  std::vector<Tensor> outputs;
};

Result<ArmResult> RunArm(bool dedup, const Model& base,
                         const Tensor& input, int rounds) {
  ServingConfig config;
  config.block_rows = kBlock;
  config.block_cols = kBlock;
  config.dedup_weights = dedup;
  ServingSession session(config);
  for (int i = 0; i < kVariants; ++i) {
    RELSERVE_ASSIGN_OR_RETURN(Model variant, MakeVariant(base, i));
    RELSERVE_RETURN_NOT_OK(session.RegisterModel(std::move(variant)));
    RELSERVE_RETURN_NOT_OK(
        session
            .Deploy("ffnn@v" + std::to_string(i),
                    ServingMode::kForceRelational, kBatch)
            .status());
  }

  ArmResult arm;
  for (const ServingSession::DeployedModelInfo& info :
       session.ListDeployedModels()) {
    arm.logical_bytes += info.logical_weight_bytes;
    arm.physical_bytes += info.physical_weight_bytes;
    arm.shared_blocks += info.shared_blocks;
    arm.total_blocks += info.total_blocks;
  }

  // Hit rate over the serving phase only (deploy-time page writes are
  // excluded by differencing the counters).
  const BufferPoolStats before =
      session.exec_context()->buffer_pool->stats();
  for (int r = 0; r < rounds; ++r) {
    for (int i = 0; i < kVariants; ++i) {
      const std::string name = "ffnn@v" + std::to_string(i);
      RELSERVE_ASSIGN_OR_RETURN(ExecOutput out,
                                session.PredictBatch(name, input));
      if (r == rounds - 1) {
        RELSERVE_ASSIGN_OR_RETURN(
            Tensor t, out.ToTensor(session.exec_context()));
        // Detach from the session's memory arena: the outputs
        // outlive this arm's session.
        RELSERVE_ASSIGN_OR_RETURN(Tensor detached, t.Clone());
        arm.outputs.push_back(std::move(detached));
      }
    }
  }
  const BufferPoolStats after =
      session.exec_context()->buffer_pool->stats();
  const int64_t hits = after.hits - before.hits;
  const int64_t misses = after.misses - before.misses;
  arm.hit_rate = hits + misses == 0
                     ? 0.0
                     : static_cast<double>(hits) / (hits + misses);
  return arm;
}

int Run() {
  const int rounds = std::max(2, static_cast<int>(
                                     2 * bench::ScaleFromEnv()));
  auto base = BuildFFNN("ffnn-base", kDims, /*seed=*/42);
  if (!base.ok()) {
    std::fprintf(stderr, "%s\n", base.status().ToString().c_str());
    return 1;
  }
  auto input = workloads::GenBatch(kBatch, Shape{kDims[0]}, 7);
  if (!input.ok()) return 1;

  std::printf(
      "Multi-tenant serving: %d fine-tuned variants "
      "(FFNN 256-1024-1024-1024-10, %lld-square blocks, only the "
      "classifier head differs), %d serving rounds per arm\n\n",
      kVariants, static_cast<long long>(kBlock), rounds);

  auto naive = RunArm(/*dedup=*/false, *base, *input, rounds);
  if (!naive.ok()) {
    std::fprintf(stderr, "%s\n", naive.status().ToString().c_str());
    return 1;
  }
  auto dedup = RunArm(/*dedup=*/true, *base, *input, rounds);
  if (!dedup.ok()) {
    std::fprintf(stderr, "%s\n", dedup.status().ToString().c_str());
    return 1;
  }

  // Bit-identity: tolerance-0 dedup must not change a single bit of
  // any variant's output.
  bool bit_identical = true;
  for (int i = 0; i < kVariants; ++i) {
    if (naive->outputs[i].MaxAbsDiff(dedup->outputs[i]) != 0.0f) {
      bit_identical = false;
    }
  }

  // Blocks a variant shares with the base, out of all its blocks
  // (the first deployment necessarily interns everything fresh).
  const double shared_fraction =
      dedup->total_blocks == kVariants ? 0.0
          : static_cast<double>(dedup->shared_blocks) /
                (dedup->total_blocks -
                 dedup->total_blocks / kVariants);
  const double byte_ratio =
      naive->physical_bytes == 0
          ? 1.0
          : static_cast<double>(dedup->physical_bytes) /
                naive->physical_bytes;

  bench::PrintRow({"Arm", "ResidentBytes", "SharedBlocks", "HitRate"});
  bench::PrintRule(4);
  char hit[32];
  std::snprintf(hit, sizeof(hit), "%.4f", naive->hit_rate);
  bench::PrintRow({"naive", bench::HumanBytes(naive->physical_bytes),
                   std::to_string(naive->shared_blocks) + "/" +
                       std::to_string(naive->total_blocks),
                   hit});
  std::snprintf(hit, sizeof(hit), "%.4f", dedup->hit_rate);
  bench::PrintRow({"dedup", bench::HumanBytes(dedup->physical_bytes),
                   std::to_string(dedup->shared_blocks) + "/" +
                       std::to_string(dedup->total_blocks),
                   hit});
  std::printf(
      "\nresident-byte ratio (dedup/naive): %.4f   variant shared "
      "fraction: %.3f   bit-identical: %s\n",
      byte_ratio, shared_fraction, bit_identical ? "yes" : "NO");

  bench::PrintBenchJson(
      "multitenant",
      {{"variants", std::to_string(kVariants)},
       {"rounds", std::to_string(rounds)},
       {"resident_bytes_naive", std::to_string(naive->physical_bytes)},
       {"resident_bytes_dedup", std::to_string(dedup->physical_bytes)},
       {"byte_ratio", bench::JsonNum(byte_ratio)},
       {"shared_fraction", bench::JsonNum(shared_fraction)},
       {"hit_rate_naive", bench::JsonNum(naive->hit_rate)},
       {"hit_rate_dedup", bench::JsonNum(dedup->hit_rate)},
       {"bit_identical", bit_identical ? "true" : "false"}});

  // The acceptance bars this bench exists to demonstrate.
  if (!bit_identical) return 1;
  if (byte_ratio > 0.25) return 1;
  if (dedup->hit_rate <= naive->hit_rate) return 1;
  return 0;
}

}  // namespace
}  // namespace relserve

int main() { return relserve::Run(); }
