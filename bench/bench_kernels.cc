// Kernel-substrate throughput: GFLOP/s for GEMM, GEMM against a
// transposed (weight-layout) B, and im2col Conv2D, across square and
// skinny shapes, comparing the portable scalar micro-kernel against
// the runtime-dispatched SIMD path at 1/4/8 pool threads.
//
// This bench cross-checks the optimizer's runtime-probed CPU
// throughput (resource/device_model.h: CalibratedCpuGemmFlops()) and
// is the before/after record in EXPERIMENTS.md. It also measures the
// int8 quantized GEMM arm against the fp32 weight-layout GEMM at the
// same shapes. Each measurement also emits a BENCH_JSON line
// (grep ^BENCH_JSON) like bench_parallel_scaling. On hardware without
// AVX2+FMA the "dispatched" rows legitimately equal the scalar rows —
// the dispatcher has nothing faster to select.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/timer.h"
#include "kernels/cpu_features.h"
#include "kernels/int8_gemm.h"
#include "kernels/kernels.h"
#include "resource/thread_pool.h"

namespace relserve {
namespace {

using kernels::SimdLevel;

Result<Tensor> FilledTensor(Shape shape, float seed) {
  RELSERVE_ASSIGN_OR_RETURN(Tensor t, Tensor::Create(std::move(shape)));
  float* data = t.data();
  const int64_t n = t.NumElements();
  for (int64_t i = 0; i < n; ++i) {
    data[i] = seed + static_cast<float>(i % 13) * 0.07f;
  }
  return t;
}

struct GemmShape {
  const char* kind;  // "square" or "skinny"
  int64_t m, n, k;
};

// One timed measurement at an explicit ISA level; restores nothing —
// the caller owns the active level.
Result<double> TimeGemm(const GemmShape& shape, bool transpose_b,
                        int repeats, ThreadPool* pool) {
  RELSERVE_ASSIGN_OR_RETURN(Tensor a,
                            FilledTensor(Shape{shape.m, shape.k}, 0.5f));
  RELSERVE_ASSIGN_OR_RETURN(
      Tensor b, FilledTensor(transpose_b ? Shape{shape.n, shape.k}
                                         : Shape{shape.k, shape.n},
                             0.25f));
  RELSERVE_ASSIGN_OR_RETURN(Tensor c,
                            Tensor::Create(Shape{shape.m, shape.n}));
  return bench::TimeBest(repeats, [&]() -> Status {
    return kernels::GemmInto(a, b, transpose_b, /*accumulate=*/false,
                             &c, pool);
  });
}

// Times the int8 quantized arm on a weight-layout (transposed-B)
// shape. The effective-GFLOP/s metric counts the same 2mnk fp32
// multiplies the dense path would do, so rows are directly comparable
// with gemm_tb.
Result<double> TimeInt8Gemm(const GemmShape& shape, int repeats,
                            ThreadPool* pool) {
  RELSERVE_ASSIGN_OR_RETURN(Tensor a,
                            FilledTensor(Shape{shape.m, shape.k}, 0.5f));
  RELSERVE_ASSIGN_OR_RETURN(Tensor w,
                            FilledTensor(Shape{shape.n, shape.k}, 0.25f));
  RELSERVE_ASSIGN_OR_RETURN(kernels::Int8Weight qw,
                            kernels::QuantizeWeightPerChannel(w));
  RELSERVE_ASSIGN_OR_RETURN(Tensor c,
                            Tensor::Create(Shape{shape.m, shape.n}));
  return bench::TimeBest(repeats, [&]() -> Status {
    return kernels::Int8GemmTransBInto(a, qw, &c, pool);
  });
}

Result<double> TimeConv(int repeats, ThreadPool* pool, double* flops) {
  const int64_t n = 4, h = 64, w = 64, c = 32, oc = 64, kh = 3, kw = 3;
  const int64_t oh = h - kh + 1, ow = w - kw + 1;
  *flops = 2.0 * n * oh * ow * oc * kh * kw * c;
  RELSERVE_ASSIGN_OR_RETURN(Tensor input,
                            FilledTensor(Shape{n, h, w, c}, 0.5f));
  RELSERVE_ASSIGN_OR_RETURN(Tensor kernel,
                            FilledTensor(Shape{oc, kh, kw, c}, 0.25f));
  return bench::TimeBest(repeats, [&]() -> Status {
    RELSERVE_ASSIGN_OR_RETURN(
        Tensor out,
        kernels::Conv2D(input, kernel, /*stride=*/1, nullptr, pool));
    (void)out;
    return Status::OK();
  });
}

void EmitRow(const char* op, const char* kind, int64_t m, int64_t n,
             int64_t k, const char* isa, int threads, double seconds,
             double flops, double scalar_seconds) {
  const double gflops = flops / seconds / 1e9;
  const double speedup = scalar_seconds / seconds;
  char shape_cell[48], gflops_cell[32], speedup_cell[32];
  std::snprintf(shape_cell, sizeof(shape_cell), "%lldx%lldx%lld",
                static_cast<long long>(m), static_cast<long long>(n),
                static_cast<long long>(k));
  std::snprintf(gflops_cell, sizeof(gflops_cell), "%.2f", gflops);
  std::snprintf(speedup_cell, sizeof(speedup_cell), "%.2fx", speedup);
  bench::PrintRow({op, kind, shape_cell, isa, std::to_string(threads),
                   gflops_cell, speedup_cell});
  bench::PrintBenchJson(
      "kernels", {{"op", bench::JsonStr(op)},
                  {"shape", bench::JsonStr(kind)},
                  {"m", std::to_string(m)},
                  {"n", std::to_string(n)},
                  {"k", std::to_string(k)},
                  {"isa", bench::JsonStr(isa)},
                  {"threads", std::to_string(threads)},
                  {"latency_s", bench::JsonNum(seconds)},
                  {"gflops", bench::JsonNum(gflops)},
                  {"speedup_vs_scalar", bench::JsonNum(speedup)}});
}

int Run() {
  const int repeats = bench::RepeatsFromEnv(3);
  const SimdLevel dispatched = kernels::DetectSimdLevel();
  std::printf(
      "Kernel micro-benchmarks: scalar vs dispatched (%s) micro-kernel "
      "path\n\n",
      kernels::SimdLevelName(dispatched));
  bench::PrintRow({"Op", "Kind", "Shape(mxnxk)", "ISA", "Threads",
                   "GFLOP/s", "vs-scalar"});
  bench::PrintRule(7);

  const GemmShape shapes[] = {
      {"square", 128, 128, 128},
      {"square", 512, 512, 512},
      {"skinny", 1024, 64, 2048},   // FFNN hidden layer at large batch
      {"skinny", 64, 2048, 1024},   // few rows, wide output
  };
  const int thread_counts[] = {1, 4, 8};
  const SimdLevel levels[] = {SimdLevel::kScalar, dispatched};

  for (const bool transpose_b : {false, true}) {
    const char* op = transpose_b ? "gemm_tb" : "gemm";
    for (const GemmShape& shape : shapes) {
      const double flops =
          2.0 * static_cast<double>(shape.m) * shape.n * shape.k;
      for (int threads : thread_counts) {
        std::unique_ptr<ThreadPool> pool;
        if (threads > 1) pool = std::make_unique<ThreadPool>(threads);
        double scalar_seconds = 0.0;
        for (const SimdLevel level : levels) {
          kernels::SetActiveSimdLevel(level);
          Result<double> seconds =
              TimeGemm(shape, transpose_b, repeats, pool.get());
          if (!seconds.ok()) {
            std::printf("%s failed: %s\n", op,
                        seconds.status().ToString().c_str());
            return 1;
          }
          if (level == SimdLevel::kScalar) scalar_seconds = *seconds;
          EmitRow(op, shape.kind, shape.m, shape.n, shape.k,
                  kernels::SimdLevelName(level), threads, *seconds,
                  flops, scalar_seconds);
        }
      }
      std::printf("\n");
    }
  }

  // Int8 quantized arm vs the fp32 weight-layout GEMM it replaces.
  // Effective GFLOP/s counts the dense-equivalent 2mnk multiplies, so
  // "vs-fp32" is the end-to-end kernel-arm speedup the optimizer buys
  // by quantizing (target: >= 1.8x at 512^3 single-thread on AVX2).
  std::printf("Int8 quantized arm (effective GFLOP/s, dense-equivalent "
              "work):\n");
  for (const GemmShape& shape : shapes) {
    const double flops =
        2.0 * static_cast<double>(shape.m) * shape.n * shape.k;
    for (int threads : thread_counts) {
      std::unique_ptr<ThreadPool> pool;
      if (threads > 1) pool = std::make_unique<ThreadPool>(threads);
      kernels::SetActiveSimdLevel(dispatched);
      Result<double> fp32_seconds =
          TimeGemm(shape, /*transpose_b=*/true, repeats, pool.get());
      if (!fp32_seconds.ok()) {
        std::printf("gemm_tb failed: %s\n",
                    fp32_seconds.status().ToString().c_str());
        return 1;
      }
      for (const SimdLevel level : levels) {
        kernels::SetActiveSimdLevel(level);
        Result<double> seconds = TimeInt8Gemm(shape, repeats, pool.get());
        if (!seconds.ok()) {
          std::printf("gemm_int8 failed: %s\n",
                      seconds.status().ToString().c_str());
          return 1;
        }
        const double gflops = flops / *seconds / 1e9;
        const double vs_fp32 = *fp32_seconds / *seconds;
        char shape_cell[48], gflops_cell[32], speedup_cell[32];
        std::snprintf(shape_cell, sizeof(shape_cell), "%lldx%lldx%lld",
                      static_cast<long long>(shape.m),
                      static_cast<long long>(shape.n),
                      static_cast<long long>(shape.k));
        std::snprintf(gflops_cell, sizeof(gflops_cell), "%.2f", gflops);
        std::snprintf(speedup_cell, sizeof(speedup_cell), "%.2fx vs fp32",
                      vs_fp32);
        bench::PrintRow({"gemm_int8", shape.kind, shape_cell,
                         kernels::SimdLevelName(level),
                         std::to_string(threads), gflops_cell,
                         speedup_cell});
        bench::PrintBenchJson(
            "kernels",
            {{"op", bench::JsonStr("gemm_int8")},
             {"shape", bench::JsonStr(shape.kind)},
             {"m", std::to_string(shape.m)},
             {"n", std::to_string(shape.n)},
             {"k", std::to_string(shape.k)},
             {"isa", bench::JsonStr(kernels::SimdLevelName(level))},
             {"threads", std::to_string(threads)},
             {"latency_s", bench::JsonNum(*seconds)},
             {"gflops", bench::JsonNum(gflops)},
             {"speedup_vs_fp32", bench::JsonNum(vs_fp32)}});
      }
    }
    std::printf("\n");
  }

  for (int threads : thread_counts) {
    std::unique_ptr<ThreadPool> pool;
    if (threads > 1) pool = std::make_unique<ThreadPool>(threads);
    double scalar_seconds = 0.0;
    for (const SimdLevel level : levels) {
      kernels::SetActiveSimdLevel(level);
      double flops = 0.0;
      Result<double> seconds = TimeConv(repeats, pool.get(), &flops);
      if (!seconds.ok()) {
        std::printf("conv2d failed: %s\n",
                    seconds.status().ToString().c_str());
        return 1;
      }
      if (level == SimdLevel::kScalar) scalar_seconds = *seconds;
      EmitRow("conv2d", "im2col", 4 * 62 * 62, 64, 3 * 3 * 32,
              kernels::SimdLevelName(level), threads, *seconds, flops,
              scalar_seconds);
    }
  }
  kernels::SetActiveSimdLevel(dispatched);

  std::printf(
      "\nGFLOP/s = 2mnk / best-of-%d latency. The dispatched path must "
      "be >= 3x the\nscalar path at 512x512x512 single-thread on AVX2 "
      "hardware; on hardware\nwithout AVX2+FMA both rows coincide by "
      "design.\n",
      repeats);
  return 0;
}

}  // namespace
}  // namespace relserve

int main() { return relserve::Run(); }
