// Concurrent serving front-end throughput (DESIGN.md "Serving
// front-end"): closed-loop multi-client harness driving single-row
// PredictBatch requests at the RequestScheduler, swept over client
// counts x max-delay batching windows, against a serialized-direct
// baseline (what callers had to do before the front-end existed: one
// global mutex around the session).
//
// Each client submits a 1-row request, waits for its result, then
// sends the next — so throughput gains come purely from the
// scheduler coalescing concurrent rows into micro-batches and
// amortizing the per-query fixed cost across them.
//
// Reported per configuration: QPS, p50/p95/p99/mean latency, and the
// scheduler's mean micro-batch size, both as a table and as
// BENCH_JSON lines.
//
// Env knobs:
//   RELSERVE_SERVE_REQUESTS — requests per client (default 32)
//   RELSERVE_BENCH_CLIENTS  — comma-separated client counts to sweep
//                             (default "1,8,32")

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/timer.h"
#include "graph/model_zoo.h"
#include "serving/request_scheduler.h"
#include "serving/serving_session.h"
#include "workloads/datasets.h"

namespace relserve {
namespace {

constexpr int64_t kDim = 28 * 28;
const char* kModel = "Caching-FFNN";

int RequestsPerClient() {
  const char* s = std::getenv("RELSERVE_SERVE_REQUESTS");
  return s != nullptr ? std::atoi(s) : 32;
}

// RELSERVE_BENCH_CLIENTS="1,8,64" overrides the swept client counts
// (machines with more cores want wider sweeps; CI wants narrower).
std::vector<int> ClientCounts() {
  const char* s = std::getenv("RELSERVE_BENCH_CLIENTS");
  if (s == nullptr || *s == '\0') return {1, 8, 32};
  std::vector<int> counts;
  for (const char* p = s; *p != '\0';) {
    char* end = nullptr;
    const long v = std::strtol(p, &end, 10);
    if (end == p) break;  // malformed tail: keep what parsed
    if (v > 0) counts.push_back(static_cast<int>(v));
    p = (*end == ',') ? end + 1 : end;
  }
  return counts.empty() ? std::vector<int>{1, 8, 32} : counts;
}

struct RunResult {
  double qps = 0.0;
  bench::LatencySummary latency;  // milliseconds
  double mean_batch_rows = 0.0;
};

// One pre-generated single-row request stream per client.
Result<std::vector<std::vector<Tensor>>> MakeStreams(int clients,
                                                     int per_client) {
  std::vector<std::vector<Tensor>> streams(clients);
  for (int c = 0; c < clients; ++c) {
    streams[c].reserve(per_client);
    for (int r = 0; r < per_client; ++r) {
      RELSERVE_ASSIGN_OR_RETURN(
          Tensor row,
          workloads::GenBatch(1, Shape{kDim},
                              1000003ULL * (c + 1) + r));
      streams[c].push_back(std::move(row));
    }
  }
  return streams;
}

// Baseline: clients serialize on a global mutex around the session —
// the pre-front-end contract. Latency includes lock wait (queueing).
Result<RunResult> RunSerial(
    ServingSession* session,
    const std::vector<std::vector<Tensor>>& streams) {
  std::mutex session_mu;
  std::vector<std::vector<double>> lat_ms(streams.size());
  std::vector<std::thread> clients;
  std::atomic<bool> failed{false};
  Timer wall;
  for (size_t c = 0; c < streams.size(); ++c) {
    clients.emplace_back([&, c] {
      for (const Tensor& row : streams[c]) {
        Timer t;
        std::lock_guard<std::mutex> lock(session_mu);
        auto out = session->PredictBatch(kModel, row);
        if (!out.ok() ||
            !out->ToTensor(session->exec_context()).ok()) {
          failed = true;
          return;
        }
        lat_ms[c].push_back(t.ElapsedSeconds() * 1e3);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  const double wall_s = wall.ElapsedSeconds();
  if (failed) return Status::Internal("serial baseline query failed");
  std::vector<double> all;
  int64_t n = 0;
  for (const auto& v : lat_ms) {
    all.insert(all.end(), v.begin(), v.end());
    n += static_cast<int64_t>(v.size());
  }
  RunResult result;
  result.qps = static_cast<double>(n) / wall_s;
  result.latency = bench::Summarize(all);
  result.mean_batch_rows = 1.0;
  return result;
}

Result<RunResult> RunScheduled(
    ServingSession* session,
    const std::vector<std::vector<Tensor>>& streams,
    int64_t max_delay_us) {
  SchedulerConfig config;
  config.max_delay_us = max_delay_us;
  config.max_batch_rows = 256;
  config.num_workers = 2;
  RequestScheduler scheduler(session, config);

  std::vector<std::vector<double>> lat_ms(streams.size());
  std::vector<std::thread> clients;
  std::atomic<bool> failed{false};
  Timer wall;
  for (size_t c = 0; c < streams.size(); ++c) {
    clients.emplace_back([&, c] {
      for (const Tensor& row : streams[c]) {
        Timer t;
        auto out = scheduler.PredictBatch(kModel, row);
        if (!out.ok()) {
          failed = true;
          return;
        }
        lat_ms[c].push_back(t.ElapsedSeconds() * 1e3);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  const double wall_s = wall.ElapsedSeconds();
  if (failed) return Status::Internal("scheduled query failed");
  const SchedulerStats stats = scheduler.stats();
  scheduler.Shutdown();
  std::vector<double> all;
  int64_t n = 0;
  for (const auto& v : lat_ms) {
    all.insert(all.end(), v.begin(), v.end());
    n += static_cast<int64_t>(v.size());
  }
  RunResult result;
  result.qps = static_cast<double>(n) / wall_s;
  result.latency = bench::Summarize(all);
  result.mean_batch_rows = stats.MeanBatchRows();
  return result;
}

void Report(const std::string& mode, int clients, int64_t delay_us,
            const RunResult& r) {
  char delay[24];
  if (mode == "serial") {
    std::snprintf(delay, sizeof(delay), "-");
  } else {
    std::snprintf(delay, sizeof(delay), "%lld",
                  static_cast<long long>(delay_us));
  }
  char qps[24], p50[24], p95[24], p99[24], rows[24];
  std::snprintf(qps, sizeof(qps), "%.0f", r.qps);
  std::snprintf(p50, sizeof(p50), "%.3f", r.latency.p50);
  std::snprintf(p95, sizeof(p95), "%.3f", r.latency.p95);
  std::snprintf(p99, sizeof(p99), "%.3f", r.latency.p99);
  std::snprintf(rows, sizeof(rows), "%.1f", r.mean_batch_rows);
  bench::PrintRow({mode, std::to_string(clients), delay, qps, p50,
                   p95, p99, rows},
                  12);
  bench::PrintBenchJson(
      "serving_throughput",
      {{"mode", bench::JsonStr(mode)},
       {"clients", bench::JsonNum(clients)},
       {"max_delay_us", bench::JsonNum(static_cast<double>(
                            mode == "serial" ? -1 : delay_us))},
       {"qps", bench::JsonNum(r.qps)},
       {"p50_ms", bench::JsonNum(r.latency.p50)},
       {"p95_ms", bench::JsonNum(r.latency.p95)},
       {"p99_ms", bench::JsonNum(r.latency.p99)},
       {"mean_ms", bench::JsonNum(r.latency.mean)},
       {"requests", bench::JsonNum(static_cast<double>(
                        r.latency.count))},
       {"mean_batch_rows", bench::JsonNum(r.mean_batch_rows)}});
}

// Checksum ablation (DESIGN.md "Fault model & recovery"): the same
// closed-loop harness over a relation-centric deployment. The pool is
// sized to the model's working set — the provisioning serving assumes
// — so deployment and warmup stream every weight page through the
// checksummed write path while steady-state traffic sees spill I/O
// only under pressure. Reported as QPS with checksums on vs off plus
// the regression percentage; hardware CRC32C (~7 GB/s) keeps it
// within a few percent. (bench_parallel_scaling with
// RELSERVE_PAGE_CHECKSUMS=0/1 quantifies the thrash-bound worst case,
// where every batch re-reads the full weight set.)
Status RunChecksumAblation(int per_client) {
  std::printf("\nPage-checksum ablation: relation-centric serving, "
              "8 clients, working-set-resident buffer pool\n\n");
  bench::PrintRow({"checksums", "qps", "p50_ms", "p95_ms"}, 12);
  bench::PrintRule(4, 12);

  double qps_on = 0.0, qps_off = 0.0;
  for (const bool checksums : {true, false}) {
    ServingConfig config;
    config.working_memory_bytes = 4LL << 30;
    // ~12 MiB of frames over ~9.6 MiB of blocked weights (154 pages)
    // plus in-flight activation blocks.
    config.buffer_pool_pages = 192;
    config.block_rows = 128;
    config.block_cols = 128;
    config.disk.checksum_pages = checksums;
    ServingSession session(config);
    RELSERVE_RETURN_NOT_OK(session.status());

    RELSERVE_ASSIGN_OR_RETURN(Model model, zoo::BuildCachingFfnn(7));
    RELSERVE_RETURN_NOT_OK(session.RegisterModel(std::move(model)));
    RELSERVE_RETURN_NOT_OK(
        session.Deploy(kModel, ServingMode::kForceRelational, 256)
            .status());
    {
      RELSERVE_ASSIGN_OR_RETURN(
          Tensor warm, workloads::GenBatch(8, Shape{kDim}, 5));
      RELSERVE_ASSIGN_OR_RETURN(ExecOutput out,
                                session.PredictBatch(kModel, warm));
      RELSERVE_RETURN_NOT_OK(
          out.ToTensor(session.exec_context()).status());
    }

    RELSERVE_ASSIGN_OR_RETURN(auto streams,
                              MakeStreams(8, per_client));
    RELSERVE_ASSIGN_OR_RETURN(RunResult r,
                              RunScheduled(&session, streams, 200));
    (checksums ? qps_on : qps_off) = r.qps;

    char qps[24], p50[24], p95[24];
    std::snprintf(qps, sizeof(qps), "%.0f", r.qps);
    std::snprintf(p50, sizeof(p50), "%.3f", r.latency.p50);
    std::snprintf(p95, sizeof(p95), "%.3f", r.latency.p95);
    bench::PrintRow({checksums ? "on" : "off", qps, p50, p95}, 12);
    bench::PrintBenchJson(
        "serving_checksum_ablation",
        {{"checksums", bench::JsonNum(checksums ? 1 : 0)},
         {"qps", bench::JsonNum(r.qps)},
         {"p50_ms", bench::JsonNum(r.latency.p50)},
         {"p95_ms", bench::JsonNum(r.latency.p95)},
         {"mean_ms", bench::JsonNum(r.latency.mean)}});
  }

  const double regression_pct =
      qps_off > 0.0 ? (qps_off - qps_on) / qps_off * 100.0 : 0.0;
  std::printf("\nchecksum QPS regression: %.2f%%\n", regression_pct);
  bench::PrintBenchJson(
      "serving_checksum_ablation",
      {{"regression_pct", bench::JsonNum(regression_pct)}});
  return Status::OK();
}

// Serve-while-ingest arm (DESIGN.md "Durability & snapshot
// isolation"): the same closed-loop scheduler harness over a
// WAL-backed session while a paced writer commits ~10k rows/s of
// MVCC transactions into a bound feature table. Every commit takes
// the commit mutex, appends + group-fsyncs WAL records, and fences
// the table's caches — so the delta vs the quiescent baseline is the
// full price serving pays for durable concurrent ingest. Target from
// the acceptance bar: <= 15% QPS degradation at 10k rows/s.
// RELSERVE_INGEST_ROWS_PER_S overrides the paced ingest rate
// (default 10000). On boxes with a spare core for the writer the
// degradation is lock/fence/fsync interference only; on a single
// core it additionally includes the writer's whole CPU share.
int64_t IngestRowsPerSecond() {
  const char* s = std::getenv("RELSERVE_INGEST_ROWS_PER_S");
  const int64_t v = s != nullptr ? std::atoll(s) : 0;
  return v > 0 ? v : 10000;
}

Status RunIngestArm(int per_client) {
  const char* wal_dir = "/tmp/relserve_bench_wal";
  ::unlink((std::string(wal_dir) + "/relserve.wal").c_str());
  ::rmdir(wal_dir);
  if (::mkdir(wal_dir, 0755) != 0) {
    return Status::IOError("mkdir failed for bench WAL dir");
  }

  ServingConfig config;
  config.working_memory_bytes = 4LL << 30;
  config.wal_dir = wal_dir;
  config.wal_fsync = WalFsyncPolicy::kGroupCommit;
  ServingSession session(config);
  RELSERVE_RETURN_NOT_OK(session.status());
  RELSERVE_RETURN_NOT_OK(session.wal_status());

  constexpr int64_t kIngestDim = 8;
  RELSERVE_RETURN_NOT_OK(
      session.CreateTable("tx", workloads::FeatureTableSchema())
          .status());

  RELSERVE_ASSIGN_OR_RETURN(Model model, zoo::BuildCachingFfnn(7));
  RELSERVE_RETURN_NOT_OK(session.RegisterModel(std::move(model)));
  RELSERVE_RETURN_NOT_OK(
      session.Deploy(kModel, ServingMode::kForceUdf, 256).status());
  {
    RELSERVE_ASSIGN_OR_RETURN(Tensor warm,
                              workloads::GenBatch(8, Shape{kDim}, 5));
    RELSERVE_ASSIGN_OR_RETURN(ExecOutput out,
                              session.PredictBatch(kModel, warm));
    RELSERVE_RETURN_NOT_OK(
        out.ToTensor(session.exec_context()).status());
  }

  RELSERVE_ASSIGN_OR_RETURN(auto streams, MakeStreams(8, per_client));

  std::printf("\nServe-while-ingest: 8 clients through the scheduler, "
              "WAL group commit, paced MVCC ingest\n\n");
  bench::PrintRow({"arm", "qps", "p50_ms", "p99_ms", "rows_per_s"},
                  12);
  bench::PrintRule(5, 12);

  // Best-of-N per arm: on small containers the paced writer and the
  // serving clients share cores, so single trials are dominated by
  // scheduling luck; the best trial per arm is the comparable number.
  constexpr int kTrials = 3;
  double qps_static = 0.0, qps_ingest = 0.0;
  for (const bool with_ingest : {false, true}) {
    RunResult best;
    double best_rows_per_s = 0.0;
    int64_t best_rows = 0;
    for (int trial = 0; trial < kTrials; ++trial) {
    std::atomic<bool> stop{false};
    std::atomic<int64_t> rows_ingested{0};
    Timer ingest_wall;
    std::thread writer;
    if (with_ingest) {
      writer = std::thread([&] {
        // <rate>/100-row transactions every 10 ms.
        const int64_t kBatch =
            std::max<int64_t>(1, IngestRowsPerSecond() / 100);
        int64_t batches = 0;
        Timer pace;
        int64_t next_id = 1 << 20;
        while (!stop.load(std::memory_order_acquire)) {
          std::vector<Row> rows;
          rows.reserve(kBatch);
          for (int64_t i = 0; i < kBatch; ++i) {
            std::vector<float> f(kIngestDim,
                                 static_cast<float>(next_id) * 1e-6f);
            rows.emplace_back(
                std::vector<Value>{Value(next_id++), Value(std::move(f))});
          }
          if (!session.IngestRows("tx", rows).ok()) return;
          rows_ingested.fetch_add(kBatch, std::memory_order_relaxed);
          ++batches;
          const double target_s = static_cast<double>(batches) * 0.010;
          const double ahead_s = target_s - pace.ElapsedSeconds();
          if (ahead_s > 0) {
            std::this_thread::sleep_for(
                std::chrono::duration<double>(ahead_s));
          }
        }
      });
    }

    RELSERVE_ASSIGN_OR_RETURN(RunResult r,
                              RunScheduled(&session, streams, 200));
    const double ingest_s = ingest_wall.ElapsedSeconds();
    stop.store(true, std::memory_order_release);
    if (writer.joinable()) writer.join();

    if (r.qps > best.qps) {
      best = r;
      best_rows = rows_ingested.load();
      best_rows_per_s =
          with_ingest && ingest_s > 0
              ? static_cast<double>(best_rows) / ingest_s
              : 0.0;
    }
    }  // trials
    (with_ingest ? qps_ingest : qps_static) = best.qps;

    char qps[24], p50[24], p99[24], rps[24];
    std::snprintf(qps, sizeof(qps), "%.0f", best.qps);
    std::snprintf(p50, sizeof(p50), "%.3f", best.latency.p50);
    std::snprintf(p99, sizeof(p99), "%.3f", best.latency.p99);
    std::snprintf(rps, sizeof(rps), "%.0f", best_rows_per_s);
    bench::PrintRow(
        {with_ingest ? "ingest" : "static", qps, p50, p99, rps}, 12);
    bench::PrintBenchJson(
        "serving_under_ingest",
        {{"arm", bench::JsonStr(with_ingest ? "ingest" : "static")},
         {"qps", bench::JsonNum(best.qps)},
         {"p50_ms", bench::JsonNum(best.latency.p50)},
         {"p99_ms", bench::JsonNum(best.latency.p99)},
         {"mean_ms", bench::JsonNum(best.latency.mean)},
         {"ingest_rows_per_s", bench::JsonNum(best_rows_per_s)},
         {"rows_ingested", bench::JsonNum(static_cast<double>(
                               best_rows))}});
  }

  const double degradation_pct =
      qps_static > 0.0 ? (qps_static - qps_ingest) / qps_static * 100.0
                       : 0.0;
  std::printf("\ningest QPS degradation: %.2f%%\n", degradation_pct);
  bench::PrintBenchJson(
      "serving_under_ingest",
      {{"degradation_pct", bench::JsonNum(degradation_pct)}});
  return Status::OK();
}

Status Run() {
  ServingConfig config;
  config.working_memory_bytes = 4LL << 30;
  ServingSession session(config);

  RELSERVE_ASSIGN_OR_RETURN(Model model, zoo::BuildCachingFfnn(7));
  RELSERVE_RETURN_NOT_OK(session.RegisterModel(std::move(model)));
  // One plan serves every micro-batch size: the engine's per-row math
  // is batch-size invariant, so coalescing is bit-transparent.
  RELSERVE_RETURN_NOT_OK(
      session.Deploy(kModel, ServingMode::kForceUdf, 256).status());

  // Warm the engine (first-touch allocation, page cache).
  {
    RELSERVE_ASSIGN_OR_RETURN(Tensor warm,
                              workloads::GenBatch(8, Shape{kDim}, 5));
    RELSERVE_ASSIGN_OR_RETURN(ExecOutput out,
                              session.PredictBatch(kModel, warm));
    RELSERVE_RETURN_NOT_OK(
        out.ToTensor(session.exec_context()).status());
  }

  const int per_client = RequestsPerClient();
  const std::vector<int> client_counts = ClientCounts();
  const std::vector<int64_t> delays_us = {0, 200, 1000};

  std::printf("Concurrent serving front-end: closed-loop clients, "
              "1-row requests, %d requests/client\n\n",
              per_client);
  bench::PrintRow({"mode", "clients", "delay_us", "qps", "p50_ms",
                   "p95_ms", "p99_ms", "batch_rows"},
                  12);
  bench::PrintRule(8, 12);

  for (int clients : client_counts) {
    RELSERVE_ASSIGN_OR_RETURN(auto streams,
                              MakeStreams(clients, per_client));
    RELSERVE_ASSIGN_OR_RETURN(RunResult serial,
                              RunSerial(&session, streams));
    Report("serial", clients, -1, serial);
    for (int64_t delay : delays_us) {
      RELSERVE_ASSIGN_OR_RETURN(
          RunResult sched,
          RunScheduled(&session, streams, delay));
      Report("scheduler", clients, delay, sched);
    }
  }
  RELSERVE_RETURN_NOT_OK(RunChecksumAblation(per_client));
  return RunIngestArm(per_client);
}

}  // namespace
}  // namespace relserve

int main() {
  relserve::Status status = relserve::Run();
  if (!status.ok()) {
    std::fprintf(stderr, "bench_serving_throughput: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  return 0;
}
