// Table 3 of the paper: latency comparison for large-scale model
// inference over data managed by the RDBMS.
//
//   Model          Batch   Ours    UDF-centric   DL-sim-A   DL-sim-B
//   Amazon-14k-FC  small   ...     ...           ...        ...
//                  large   ...     OOM           OOM        OOM
//   LandCover      1       ...     OOM           ...        OOM
//                  2       ...     OOM           OOM        OOM
//
// Geometry is scaled (RELSERVE_SCALE, default 0.02) and every arena is
// derived from the scaled model's measured footprints so each row
// reproduces the paper's feasibility pattern:
//   footprint(small batch)  <  arena  <  footprint(large batch).
// The two simulated DL runtimes stand in for TensorFlow and PyTorch;
// they share kernels and differ only in their memory budget (the
// paper's TF survives LandCover batch 1 where PyTorch does not).
// Framework-specific kernel constants are out of scope — the *shape*
// (who completes, who OOMs, and that relation-centric pays a chunking
// overhead where whole-tensor fits) is what this reproduces.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "engine/external_runtime.h"
#include "graph/model_zoo.h"
#include "serving/serving_session.h"
#include "workloads/datasets.h"

namespace relserve {
namespace {

constexpr int64_t kMiB = 1LL << 20;

struct SystemResult {
  Result<double> ours = Status::Internal("not run");
  Result<double> udf = Status::Internal("not run");
  Result<double> dl_a = Status::Internal("not run");
  Result<double> dl_b = Status::Internal("not run");
};

// Times one in-database run under `mode`; a deploy failure (resident
// weights over the arena) counts as the run's OOM, as in the paper.
Result<double> TimeInDb(ServingSession* session,
                        const std::string& model,
                        const std::string& table, ServingMode mode,
                        int64_t batch, int repeats) {
  auto deployed = session->Deploy(model, mode, batch);
  RELSERVE_RETURN_NOT_OK(deployed.status());
  return bench::TimeBest(repeats, [&]() -> Status {
    RELSERVE_ASSIGN_OR_RETURN(ExecOutput out,
                              session->Predict(model, table));
    // A blocked output (e.g. LandCover's feature map) stays stored in
    // the database — the paper's scenario; whole-tensor outputs are
    // already materialized.
    (void)out;
    return Status::OK();
  });
}

Result<double> TimeDlCentric(ServingSession* session,
                             const std::string& model,
                             const std::string& table,
                             ExternalRuntime* runtime, int repeats) {
  RELSERVE_RETURN_NOT_OK(session->OffloadModel(model, runtime));
  return bench::TimeBest(repeats, [&]() -> Status {
    RELSERVE_ASSIGN_OR_RETURN(Tensor t,
                              session->PredictViaRuntime(model, table));
    (void)t;
    return Status::OK();
  });
}

void PrintResult(const std::string& model, int64_t batch,
                 const SystemResult& r) {
  bench::PrintRow({model, std::to_string(batch), bench::Cell(r.ours),
                   bench::Cell(r.udf), bench::Cell(r.dl_a),
                   bench::Cell(r.dl_b)});
}

Status RunAmazon(double scale, int repeats) {
  const auto spec = zoo::Table1FcSpecs(scale)[3];  // Amazon-14k-FC
  const int64_t small_batch = 125, large_batch = 1000;
  const int64_t features = spec.dims[0];
  const int64_t hidden = spec.dims[1];
  const int64_t outputs = spec.dims[2];

  RELSERVE_ASSIGN_OR_RETURN(Model probe, zoo::BuildFromSpec(spec, 1));
  const int64_t weight_bytes = probe.TotalWeightBytes();
  auto udf_fp = [&](int64_t b) {
    return weight_bytes + 4 * b * (features + hidden + outputs);
  };
  auto dl_fp = [&](int64_t b) {
    // Decode peak: wire buffer + decoded tensor coexist.
    return weight_bytes + 4 * b * (2 * features + hidden + outputs);
  };

  ServingConfig config;
  config.working_memory_bytes = udf_fp(small_batch) + 8 * kMiB;
  config.memory_threshold_bytes =
      static_cast<int64_t>(2.0 * scale * (1LL << 30));
  config.buffer_pool_pages = 4096;  // 256 MiB
  config.block_rows = 512;
  config.block_cols = 512;
  ServingSession session(config);
  std::printf("# Amazon-14k-FC scale=%.3f: weights=%s, db-arena=%s, "
              "threshold=%s\n",
              scale, bench::HumanBytes(weight_bytes).c_str(),
              bench::HumanBytes(config.working_memory_bytes).c_str(),
              bench::HumanBytes(config.memory_threshold_bytes).c_str());

  RELSERVE_ASSIGN_OR_RETURN(
      TableInfo * small_table,
      session.CreateTable("small", workloads::FeatureTableSchema()));
  RELSERVE_RETURN_NOT_OK(workloads::FillFeatureTable(
      small_table, small_batch, features, 3));
  RELSERVE_ASSIGN_OR_RETURN(
      TableInfo * large_table,
      session.CreateTable("large", workloads::FeatureTableSchema()));
  RELSERVE_RETURN_NOT_OK(workloads::FillFeatureTable(
      large_table, large_batch, features, 4));
  RELSERVE_ASSIGN_OR_RETURN(Model model, zoo::BuildFromSpec(spec, 1));
  RELSERVE_RETURN_NOT_OK(session.RegisterModel(std::move(model)));

  for (const auto& [batch, table] :
       std::vector<std::pair<int64_t, std::string>>{
           {small_batch, "small"}, {large_batch, "large"}}) {
    SystemResult result;
    result.ours = TimeInDb(&session, spec.name, table,
                           ServingMode::kAdaptive, batch, repeats);
    result.udf = TimeInDb(&session, spec.name, table,
                          ServingMode::kForceUdf, batch, repeats);
    {
      ExternalRuntime dl_a("sim-framework-A",
                           dl_fp(small_batch) + 8 * kMiB);
      result.dl_a = TimeDlCentric(&session, spec.name, table, &dl_a,
                                  repeats);
    }
    {
      ExternalRuntime dl_b("sim-framework-B",
                           dl_fp(small_batch) + 4 * kMiB);
      result.dl_b = TimeDlCentric(&session, spec.name, table, &dl_b,
                                  repeats);
    }
    PrintResult(spec.name, batch, result);
  }
  return Status::OK();
}

Status RunLandCover(double scale, int repeats) {
  const auto spec = zoo::Table2ConvSpecs(scale)[1];  // LandCover
  const int64_t width = spec.image_h * spec.image_w * spec.image_c;
  const int64_t pixels = spec.image_h * spec.image_w;  // 1x1 kernel
  auto conv_fp = [&](int64_t b) {
    // UDF path peak: full output map + one image's product + im2col +
    // the image itself.
    return 4 * (b * pixels * spec.out_channels +
                pixels * spec.out_channels + pixels * spec.image_c +
                width);
  };

  ServingConfig config;
  // Paper: UDF-centric OOMs even at batch 1.
  config.working_memory_bytes =
      static_cast<int64_t>(conv_fp(1) * 0.7);
  // LandCover's feature map scales with scale^2 (pixels x channels)
  // while the paper's 2 GB threshold scales linearly, so keep the
  // paper's threshold/footprint *ratio* instead: 2 GB / 51 GB ~ 1/25.
  config.memory_threshold_bytes = conv_fp(1) / 25;
  config.buffer_pool_pages = 4096;
  config.block_rows = 512;
  config.block_cols = 512;
  ServingSession session(config);
  std::printf("\n# LandCover scale=%.3f: image=%lldx%lldx%lld "
              "out_c=%lld, db-arena=%s, batch-1 whole-tensor "
              "footprint=%s\n",
              scale, static_cast<long long>(spec.image_h),
              static_cast<long long>(spec.image_w),
              static_cast<long long>(spec.image_c),
              static_cast<long long>(spec.out_channels),
              bench::HumanBytes(config.working_memory_bytes).c_str(),
              bench::HumanBytes(conv_fp(1)).c_str());

  for (int64_t batch : {1, 2}) {
    const std::string table = "images" + std::to_string(batch);
    RELSERVE_ASSIGN_OR_RETURN(
        TableInfo * t,
        session.CreateTable(table, workloads::FeatureTableSchema()));
    RELSERVE_RETURN_NOT_OK(
        workloads::FillFeatureTable(t, batch, width, 5));
  }
  RELSERVE_ASSIGN_OR_RETURN(Model model, zoo::BuildFromSpec(spec, 1));
  RELSERVE_RETURN_NOT_OK(session.RegisterModel(std::move(model)));

  for (int64_t batch : {1, 2}) {
    const std::string table = "images" + std::to_string(batch);
    SystemResult result;
    result.ours = TimeInDb(&session, spec.name, table,
                           ServingMode::kAdaptive, batch, repeats);
    result.udf = TimeInDb(&session, spec.name, table,
                          ServingMode::kForceUdf, batch, repeats);
    {
      // Framework A (the paper's TF): survives batch 1, not batch 2.
      ExternalRuntime dl_a("sim-framework-A", conv_fp(1) + 8 * kMiB);
      result.dl_a =
          TimeDlCentric(&session, spec.name, table, &dl_a, repeats);
    }
    {
      // Framework B (the paper's PyTorch): OOMs already at batch 1.
      ExternalRuntime dl_b("sim-framework-B",
                           static_cast<int64_t>(conv_fp(1) * 0.7));
      result.dl_b =
          TimeDlCentric(&session, spec.name, table, &dl_b, repeats);
    }
    PrintResult(spec.name, batch, result);
  }
  return Status::OK();
}

int Run() {
  const double scale = bench::ScaleFromEnv();
  const int repeats = bench::RepeatsFromEnv(1);
  std::printf("Table 3: large-scale model inference over "
              "RDBMS-managed data (seconds; OOM = out of memory)\n\n");
  bench::PrintRow({"Model", "Batch", "Ours", "UDF-centric",
                   "DL-sim-A", "DL-sim-B"});
  bench::PrintRule(6);
  Status s = RunAmazon(scale, repeats);
  if (s.ok()) s = RunLandCover(scale, repeats);
  if (!s.ok()) {
    std::fprintf(stderr, "bench failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf(
      "\nExpected shape (paper Table 3): whole-tensor systems "
      "complete the small\nbatch (and beat Ours there — chunking "
      "overhead), then OOM at the large\nbatch, while the adaptive "
      "relation-centric plan completes every row by\nspilling tensor "
      "blocks through the buffer pool.\n");
  return 0;
}

}  // namespace
}  // namespace relserve

int main() { return relserve::Run(); }
