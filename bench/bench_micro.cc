// google-benchmark microbenchmarks for the substrate: GEMM, im2col,
// block matmul, buffer pool paging, row (de)serialization, and HNSW
// search. These are the building-block costs behind every table in
// EXPERIMENTS.md.

#include <benchmark/benchmark.h>

#include "cache/hnsw_index.h"
#include "common/random.h"
#include "engine/block_ops.h"
#include "kernels/kernels.h"
#include "relational/row.h"
#include "storage/buffer_pool.h"
#include "workloads/datasets.h"

namespace relserve {
namespace {

void BM_Gemm(benchmark::State& state) {
  const int64_t n = state.range(0);
  auto a = workloads::GenBatch(n, Shape{n}, 1);
  auto b = workloads::GenBatch(n, Shape{n}, 2);
  for (auto _ : state) {
    auto c = kernels::MatMul(*a, *b, false);
    benchmark::DoNotOptimize(c->data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(256)->Arg(512);

void BM_GemmTransposed(benchmark::State& state) {
  const int64_t n = state.range(0);
  auto a = workloads::GenBatch(n, Shape{n}, 1);
  auto b = workloads::GenBatch(n, Shape{n}, 2);
  for (auto _ : state) {
    auto c = kernels::MatMul(*a, *b, true);
    benchmark::DoNotOptimize(c->data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmTransposed)->Arg(64)->Arg(256)->Arg(512);

void BM_Im2Col(benchmark::State& state) {
  const int64_t side = state.range(0);
  auto image = workloads::GenBatch(side, Shape{side, 3}, 1);
  auto shaped = image->Reshape(Shape{side, side, 3});
  for (auto _ : state) {
    auto cols = kernels::Im2Col(*shaped, 3, 3, 1);
    benchmark::DoNotOptimize(cols->data());
  }
}
BENCHMARK(BM_Im2Col)->Arg(64)->Arg(256);

void BM_BlockMatMul(benchmark::State& state) {
  const int64_t n = 512;
  const int64_t block = state.range(0);
  DiskManager disk;
  BufferPool pool(&disk, 4096);
  MemoryTracker tracker("bench");
  ExecContext ctx;
  ctx.tracker = &tracker;
  ctx.buffer_pool = &pool;
  ctx.block_rows = block;
  ctx.block_cols = block;
  auto x = workloads::GenBatch(n, Shape{n}, 1);
  auto w = workloads::GenBatch(n, Shape{n}, 2);
  auto xs = blockops::ChunkMatrix(*x, &ctx);
  auto ws = blockops::ChunkMatrix(*w, &ctx);
  for (auto _ : state) {
    auto c = blockops::BlockMatMul(**xs, **ws, &ctx);
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_BlockMatMul)->Arg(64)->Arg(128)->Arg(256);

void BM_BufferPoolFetch(benchmark::State& state) {
  const int64_t pages = state.range(0);
  DiskManager disk;
  BufferPool pool(&disk, 64);  // resident capacity 64 pages
  std::vector<PageId> ids(pages);
  for (int64_t i = 0; i < pages; ++i) {
    auto page = pool.NewPage(&ids[i]);
    pool.UnpinPage(ids[i], true);
    benchmark::DoNotOptimize(page);
  }
  Rng rng(3);
  for (auto _ : state) {
    const PageId id = ids[rng.UniformInt(0, pages - 1)];
    auto page = pool.FetchPage(id);
    benchmark::DoNotOptimize(*page);
    pool.UnpinPage(id, false);
  }
}
BENCHMARK(BM_BufferPoolFetch)->Arg(32)->Arg(64)->Arg(256);

void BM_RowSerialize(benchmark::State& state) {
  const int64_t width = state.range(0);
  std::vector<float> features(width, 1.5f);
  Row row({Value(int64_t{7}), Value(features)});
  std::string bytes;
  for (auto _ : state) {
    bytes.clear();
    row.SerializeTo(&bytes);
    auto back = Row::Deserialize(bytes.data(), bytes.size());
    benchmark::DoNotOptimize(back);
  }
  state.SetBytesProcessed(state.iterations() * width * 4);
}
BENCHMARK(BM_RowSerialize)->Arg(28)->Arg(968);

void BM_HnswSearch(benchmark::State& state) {
  const int dim = 64;
  const int64_t n = state.range(0);
  Rng rng(5);
  HnswIndex index(dim);
  std::vector<float> v(dim);
  for (int64_t i = 0; i < n; ++i) {
    for (float& x : v) x = rng.Uniform();
    auto id = index.Add(v);
    benchmark::DoNotOptimize(id);
  }
  for (auto _ : state) {
    for (float& x : v) x = rng.Uniform();
    auto result = index.Search(v, 1);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_HnswSearch)->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace relserve
