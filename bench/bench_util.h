// Shared helpers for the paper-reproduction benchmark binaries.
//
// Each bench prints the rows of one table/figure of the paper
// (EXPERIMENTS.md maps bench -> artifact). Scale factors default to a
// laptop-friendly geometry and can be overridden with environment
// variables:
//   RELSERVE_SCALE    — model scale for the large models (default 0.01)
//   RELSERVE_REPEATS  — timing repetitions (default 3)

#ifndef RELSERVE_BENCH_BENCH_UTIL_H_
#define RELSERVE_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/timer.h"
#include "kernels/cpu_features.h"
#include "kernels/int8_gemm.h"

namespace relserve {
namespace bench {

inline double ScaleFromEnv(double fallback = 0.01) {
  const char* s = std::getenv("RELSERVE_SCALE");
  return s != nullptr ? std::atof(s) : fallback;
}

inline int RepeatsFromEnv(int fallback = 3) {
  const char* s = std::getenv("RELSERVE_REPEATS");
  return s != nullptr ? std::atoi(s) : fallback;
}

// Times `fn` `repeats` times and returns the best (minimum) seconds,
// the standard steady-state metric for serving latency.
inline Result<double> TimeBest(int repeats,
                               const std::function<Status()>& fn) {
  double best = 1e100;
  for (int i = 0; i < repeats; ++i) {
    Timer timer;
    RELSERVE_RETURN_NOT_OK(fn());
    best = std::min(best, timer.ElapsedSeconds());
  }
  return best;
}

// Formats a latency-or-OOM cell like the paper's Table 3.
inline std::string Cell(const Result<double>& seconds) {
  if (!seconds.ok()) {
    if (seconds.status().IsOutOfMemory()) return "OOM";
    return seconds.status().ToString();
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", *seconds);
  return buf;
}

inline std::string HumanBytes(int64_t bytes) {
  char buf[32];
  if (bytes >= (1LL << 30)) {
    std::snprintf(buf, sizeof(buf), "%.2f GiB",
                  static_cast<double>(bytes) / (1LL << 30));
  } else if (bytes >= (1LL << 20)) {
    std::snprintf(buf, sizeof(buf), "%.2f MiB",
                  static_cast<double>(bytes) / (1LL << 20));
  } else if (bytes >= (1LL << 10)) {
    std::snprintf(buf, sizeof(buf), "%.2f KiB",
                  static_cast<double>(bytes) / (1LL << 10));
  } else {
    std::snprintf(buf, sizeof(buf), "%lld B",
                  static_cast<long long>(bytes));
  }
  return buf;
}

// Fixed-width row printer for paper-style tables.
inline void PrintRow(const std::vector<std::string>& cells,
                     int width = 18) {
  for (const std::string& cell : cells) {
    std::printf("%-*s", width, cell.c_str());
  }
  std::printf("\n");
}

inline void PrintRule(size_t columns, int width = 18) {
  std::printf("%s\n",
              std::string(columns * static_cast<size_t>(width), '-')
                  .c_str());
}

// Linear-interpolation percentile over an unsorted sample set
// (`p` in [0, 100]); the serving benches report p50/p95/p99 tail
// latency with this. Returns 0 for an empty sample.
inline double Percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  if (samples.size() == 1) return samples[0];
  const double rank =
      (p / 100.0) * static_cast<double>(samples.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] + (samples[hi] - samples[lo]) * frac;
}

// Tail-latency digest of one benchmark configuration.
struct LatencySummary {
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  size_t count = 0;
};

inline LatencySummary Summarize(const std::vector<double>& samples) {
  LatencySummary s;
  s.count = samples.size();
  if (samples.empty()) return s;
  double sum = 0.0;
  for (double v : samples) sum += v;
  s.mean = sum / static_cast<double>(samples.size());
  s.p50 = Percentile(samples, 50.0);
  s.p95 = Percentile(samples, 95.0);
  s.p99 = Percentile(samples, 99.0);
  return s;
}

// Standard BENCH JSON: one machine-readable line per measurement, so
// CI and plotting scripts can scrape benches without parsing the
// human-readable tables. Lines look like
//   BENCH_JSON {"bench":"parallel_scaling","threads":4,...}
// and are greppable with `grep ^BENCH_JSON`. Field values must
// already be valid JSON fragments (use JsonStr for strings).
inline std::string JsonStr(const std::string& s) {
  return "\"" + s + "\"";
}

inline std::string JsonNum(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

inline void PrintBenchJson(
    const std::string& bench,
    const std::vector<std::pair<std::string, std::string>>& fields) {
  std::string line = "BENCH_JSON {\"bench\":" + JsonStr(bench);
  for (const auto& [key, value] : fields) {
    line += ",\"" + key + "\":" + value;
  }
  // Every line self-describes the kernel substrate it was measured on:
  // the SIMD level the dispatcher is actually using right now and the
  // RELSERVE_QUANTIZE override state — so scraped results are never
  // compared across silently different backends.
  line += ",\"dispatch_isa\":" +
          JsonStr(kernels::SimdLevelName(kernels::ActiveSimdLevel()));
  line += ",\"quantize_mode\":" +
          JsonStr(kernels::QuantizeModeName(kernels::ActiveQuantizeMode()));
  line += "}";
  std::printf("%s\n", line.c_str());
}

}  // namespace bench
}  // namespace relserve

#endif  // RELSERVE_BENCH_BENCH_UTIL_H_
