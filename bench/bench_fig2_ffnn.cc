// Figure 2 of the paper: latency reduction of in-database serving
// (our adaptive optimizer, which picks the UDF-centric representation
// for these small FFNN models) versus the DL-centric architecture
// (simulated external runtime behind the connector) for inference over
// data managed by the RDBMS.
//
// The paper's claim: for small models, cross-system data transfer
// dominates, so in-database serving wins. Kernels are identical across
// architectures here, so any gap is data movement by construction.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "engine/external_runtime.h"
#include "graph/model_zoo.h"
#include "serving/serving_session.h"
#include "workloads/datasets.h"

namespace relserve {
namespace {

Status RunModel(const zoo::FcSpec& spec, int64_t rows, int repeats) {
  ServingConfig config;
  config.working_memory_bytes = 4LL << 30;
  config.memory_threshold_bytes = 256LL << 20;
  ServingSession session(config);

  RELSERVE_ASSIGN_OR_RETURN(TableInfo * table,
                            session.CreateTable(
                                "data", workloads::FeatureTableSchema()));
  RELSERVE_RETURN_NOT_OK(
      workloads::FillFeatureTable(table, rows, spec.dims[0], 7));
  RELSERVE_ASSIGN_OR_RETURN(Model model, zoo::BuildFromSpec(spec, 1));
  RELSERVE_RETURN_NOT_OK(session.RegisterModel(std::move(model)));
  RELSERVE_ASSIGN_OR_RETURN(
      const InferencePlan* plan,
      session.Deploy(spec.name, ServingMode::kAdaptive, rows));

  ExternalRuntime runtime("sim-dl-framework", 4LL << 30,
                          session.thread_pool());
  RELSERVE_RETURN_NOT_OK(session.OffloadModel(spec.name, &runtime));

  RELSERVE_ASSIGN_OR_RETURN(
      double ours, bench::TimeBest(repeats, [&]() -> Status {
        RELSERVE_ASSIGN_OR_RETURN(ExecOutput out,
                                  session.Predict(spec.name, "data"));
        RELSERVE_ASSIGN_OR_RETURN(Tensor t,
                                  out.ToTensor(session.exec_context()));
        (void)t;
        return Status::OK();
      }));
  RELSERVE_ASSIGN_OR_RETURN(
      double dl, bench::TimeBest(repeats, [&]() -> Status {
        RELSERVE_ASSIGN_OR_RETURN(
            Tensor t, session.PredictViaRuntime(spec.name, "data"));
        (void)t;
        return Status::OK();
      }));

  char ours_s[32], dl_s[32], speedup[32];
  std::snprintf(ours_s, sizeof(ours_s), "%.4f", ours);
  std::snprintf(dl_s, sizeof(dl_s), "%.4f", dl);
  std::snprintf(speedup, sizeof(speedup), "%.2fx", dl / ours);
  bench::PrintRow({spec.name, std::to_string(rows),
                   plan->AllUdf() ? "udf-centric" : "mixed", ours_s,
                   dl_s, speedup});
  return Status::OK();
}

int Run() {
  const int repeats = bench::RepeatsFromEnv();
  std::printf(
      "Figure 2: FFNN inference latency over RDBMS-managed data\n"
      "ours = in-database (adaptive), dl-centric = connector + "
      "external runtime\n\n");
  bench::PrintRow({"Model", "Rows", "OursRepr", "Ours(s)",
                   "DL-centric(s)", "Speedup"});
  bench::PrintRule(6);
  const auto specs = zoo::Table1FcSpecs(1.0);
  // Fraud models sweep two batch sizes; Encoder-FC (40x more compute
  // per row) runs the smaller batch only.
  const std::vector<std::pair<zoo::FcSpec, std::vector<int64_t>>>
      workloads = {{specs[0], {1000, 10000}},
                   {specs[1], {1000, 10000}},
                   {specs[2], {500}}};
  for (const auto& [spec, row_counts] : workloads) {
    for (int64_t rows : row_counts) {
      Status s = RunModel(spec, rows, repeats);
      if (!s.ok()) {
        std::fprintf(stderr, "%s rows=%lld: %s\n", spec.name.c_str(),
                     static_cast<long long>(rows),
                     s.ToString().c_str());
        return 1;
      }
    }
  }
  std::printf(
      "\nExpected shape (paper): in-database serving beats the "
      "DL-centric\narchitecture for these small models because the "
      "export/import round trip\ndominates; the gap narrows as model "
      "compute grows (Encoder-FC).\n");
  return 0;
}

}  // namespace
}  // namespace relserve

int main() { return relserve::Run(); }
