// Ablation A1 (DESIGN.md): the adaptive optimizer's memory threshold —
// the paper's "2 GB" constant. Sweeps the threshold for a mid-size
// FFNN and reports how many operators go relation-centric and the
// end-to-end latency, showing the udf/relational crossover the rule
// trades on.

#include <cstdio>

#include "bench_util.h"
#include "graph/model.h"
#include "serving/serving_session.h"
#include "workloads/datasets.h"

namespace relserve {
namespace {

int Run() {
  const int repeats = bench::RepeatsFromEnv();
  const int64_t batch = 256;

  std::printf("Ablation A1: representation threshold sweep "
              "(FFNN 2048/512/64, batch %lld)\n\n",
              static_cast<long long>(batch));
  bench::PrintRow({"Threshold", "RelationalOps", "Latency(s)"});
  bench::PrintRule(3);

  for (int64_t threshold_mb : {1, 4, 8, 16, 32, 64, 128}) {
    ServingConfig config;
    config.working_memory_bytes = 2LL << 30;
    config.memory_threshold_bytes = threshold_mb * (1LL << 20);
    config.block_rows = 512;
    config.block_cols = 512;
    ServingSession session(config);

    auto table =
        session.CreateTable("t", workloads::FeatureTableSchema());
    if (!table.ok()) return 1;
    if (!workloads::FillFeatureTable(*table, batch, 2048, 1).ok()) {
      return 1;
    }
    auto model = BuildFFNN("m", {2048, 512, 64}, 1);
    if (!model.ok() ||
        !session.RegisterModel(std::move(*model)).ok()) {
      return 1;
    }
    auto plan = session.Deploy("m", ServingMode::kAdaptive, batch);
    if (!plan.ok()) return 1;
    int64_t relational = 0;
    for (const auto& d : (*plan)->decisions) {
      relational += d.repr == Repr::kRelational;
    }
    auto latency = bench::TimeBest(repeats, [&]() -> Status {
      RELSERVE_ASSIGN_OR_RETURN(ExecOutput out,
                                session.Predict("m", "t"));
      RELSERVE_ASSIGN_OR_RETURN(Tensor t,
                                out.ToTensor(session.exec_context()));
      (void)t;
      return Status::OK();
    });
    bench::PrintRow({bench::HumanBytes(config.memory_threshold_bytes),
                     std::to_string(relational),
                     bench::Cell(latency)});
  }
  std::printf(
      "\nExpected shape: low thresholds force everything relational "
      "(chunking\noverhead, higher latency); high thresholds keep the "
      "model in one UDF\n(fastest when it fits). The rule's value is "
      "picking per-operator.\n");
  return 0;
}

}  // namespace
}  // namespace relserve

int main() { return relserve::Run(); }
