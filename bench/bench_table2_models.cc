// Table 2 of the paper: the convolutional model zoo and the
// optimizer's decision per model. The memory driver for conv is the
// output feature map (paper: LandCover's map is
// batch x 2500 x 2500 x 2048 — far beyond any whole-tensor arena).

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "graph/model.h"
#include "graph/model_zoo.h"
#include "optimizer/optimizer.h"
#include "serving/serving_session.h"

namespace relserve {
namespace {

// --- Extreme classification (the Amazon-14k shape) --------------------
//
// The paper's extreme-classification workload: a wide FFNN head whose
// 14k-class logits layer dominates the query. The pruned weight is
// mostly zero, and a serving query only needs the top-5 classes — the
// configuration the CSR sparse arm + fused top-k head exists for. This
// section serves the same model both ways and reports end-to-end QPS
// and top-5 agreement.

constexpr int64_t kXcInput = 128;
constexpr int64_t kXcHidden = 256;
constexpr int64_t kXcClasses = 14588;  // Amazon-14k label count
constexpr int64_t kXcBatch = 64;
constexpr int64_t kXcTopK = 5;

// Deterministically prunes ~92% of the head weight (the sparsity a
// magnitude-pruned extreme-classification layer typically carries).
void PruneHead(Tensor* w) {
  uint64_t state = 0x9e3779b97f4a7c15ULL;
  for (int64_t i = 0; i < w->NumElements(); ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    if (static_cast<int>((state >> 33) % 1000) < 920) {
      w->data()[i] = 0.0f;
    }
  }
}

Result<Model> BuildXcModel() {
  RELSERVE_ASSIGN_OR_RETURN(
      Model model,
      BuildFFNN("amazon14k", {kXcInput, kXcHidden, kXcClasses},
                /*seed=*/7));
  RELSERVE_ASSIGN_OR_RETURN(Tensor * head,
                            model.GetMutableWeight("w1"));
  PruneHead(head);
  return model;
}

// Top-k class indices of one output row under the serving order
// (value desc, index asc) — works on both full logits and [2k] rows.
std::vector<int64_t> TopIndices(const Tensor& out, int64_t row,
                                int64_t k) {
  const int64_t width = out.shape().dim(1);
  if (width == 2 * k) {  // fused head: indices are the second half
    std::vector<int64_t> idx(k);
    for (int64_t i = 0; i < k; ++i) {
      idx[i] = static_cast<int64_t>(out.At(row, k + i));
    }
    std::sort(idx.begin(), idx.end());
    return idx;
  }
  std::vector<std::pair<float, int64_t>> all(width);
  for (int64_t c = 0; c < width; ++c) all[c] = {out.At(row, c), c};
  std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  std::vector<int64_t> idx(k);
  for (int64_t i = 0; i < k; ++i) idx[i] = all[i].second;
  std::sort(idx.begin(), idx.end());
  return idx;
}

int RunExtremeClassification() {
  const int repeats = bench::RepeatsFromEnv(3);
  std::printf(
      "\nExtreme classification (Amazon-14k shape): %lldx%lldx%lld "
      "FFNN, head\npruned to ~8%% density, batch %lld, top-%lld "
      "serving.\n\n",
      static_cast<long long>(kXcInput),
      static_cast<long long>(kXcHidden),
      static_cast<long long>(kXcClasses),
      static_cast<long long>(kXcBatch),
      static_cast<long long>(kXcTopK));

  auto make_session = [](bool fused) {
    ServingConfig config;
    if (fused) {
      config.optimizer_tuning.enable_sparse = true;
      config.optimizer_tuning.topk = kXcTopK;
    }
    return std::make_unique<ServingSession>(config);
  };
  auto dense = make_session(false);
  auto fused = make_session(true);
  for (ServingSession* s : {dense.get(), fused.get()}) {
    auto model = BuildXcModel();
    if (!model.ok() || !s->RegisterModel(*std::move(model)).ok() ||
        !s->Deploy("amazon14k", ServingMode::kAdaptive, kXcBatch)
             .ok()) {
      std::fprintf(stderr, "extreme-classification deploy failed\n");
      return 1;
    }
  }

  auto input = Tensor::Create(Shape{kXcBatch, kXcInput});
  if (!input.ok()) return 1;
  uint64_t state = 123;
  for (int64_t i = 0; i < input->NumElements(); ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    input->data()[i] =
        static_cast<float>((state >> 33) & 0xFFFF) / 32768.0f - 1.0f;
  }

  Result<ExecOutput> dense_out = dense->PredictBatch("amazon14k", *input);
  Result<ExecOutput> fused_out = fused->PredictBatch("amazon14k", *input);
  if (!dense_out.ok() || !fused_out.ok()) {
    std::fprintf(stderr, "extreme-classification predict failed\n");
    return 1;
  }
  int64_t agree = 0;
  for (int64_t r = 0; r < kXcBatch; ++r) {
    const auto want = TopIndices(dense_out->tensor, r, kXcTopK);
    const auto got = TopIndices(fused_out->tensor, r, kXcTopK);
    for (int64_t i = 0; i < kXcTopK; ++i) agree += want[i] == got[i];
  }
  const double agreement = static_cast<double>(agree) /
                           static_cast<double>(kXcBatch * kXcTopK);

  bench::PrintRow({"Variant", "Latency(s)", "QPS", "Top5Agree"}, 20);
  bench::PrintRule(4, 20);
  double qps[2] = {0.0, 0.0};
  const char* names[2] = {"dense_fp32", "sparse_topk"};
  ServingSession* sessions[2] = {dense.get(), fused.get()};
  for (int v = 0; v < 2; ++v) {
    Result<double> seconds =
        bench::TimeBest(repeats, [&]() -> Status {
          return sessions[v]
              ->PredictBatch("amazon14k", *input)
              .status();
        });
    if (!seconds.ok()) {
      std::fprintf(stderr, "%s: %s\n", names[v],
                   seconds.status().ToString().c_str());
      return 1;
    }
    qps[v] = static_cast<double>(kXcBatch) / *seconds;
    char lat_cell[32], qps_cell[32], agree_cell[32];
    std::snprintf(lat_cell, sizeof(lat_cell), "%.4f", *seconds);
    std::snprintf(qps_cell, sizeof(qps_cell), "%.0f", qps[v]);
    std::snprintf(agree_cell, sizeof(agree_cell), "%.4f",
                  v == 0 ? 1.0 : agreement);
    bench::PrintRow({names[v], lat_cell, qps_cell, agree_cell}, 20);
    bench::PrintBenchJson(
        "extreme_classification",
        {{"variant", bench::JsonStr(names[v])},
         {"classes", std::to_string(kXcClasses)},
         {"batch", std::to_string(kXcBatch)},
         {"topk", std::to_string(v == 0 ? 0 : kXcTopK)},
         {"latency_s", bench::JsonNum(*seconds)},
         {"qps", bench::JsonNum(qps[v])},
         {"top5_agreement", bench::JsonNum(v == 0 ? 1.0 : agreement)}});
  }
  bench::PrintBenchJson(
      "extreme_classification",
      {{"variant", bench::JsonStr("speedup")},
       {"qps_ratio", bench::JsonNum(qps[1] / qps[0])},
       {"top5_agreement", bench::JsonNum(agreement)}});
  std::printf(
      "\nThe sparse + fused top-k head should serve >= 2x the dense "
      "fp32 QPS at\n>= 99%% top-5 agreement; the fused plan never "
      "materializes the %lld-wide\nlogits tensor.\n",
      static_cast<long long>(kXcClasses));
  return 0;
}

int Run() {
  const double scale = bench::ScaleFromEnv();
  std::printf("Table 2: Convolutional models (stride 1, no padding), "
              "scale=%.3f\n"
              "(threshold: paper's 2 GiB for the unscaled "
              "DeepBench-CONV1; LandCover's feature map scales with "
              "scale^2, so its threshold keeps the paper's 2GiB/51GiB "
              "ratio)\n\n",
              scale);
  bench::PrintRow({"Model", "Input", "Kernel", "OutputMap",
                   "MaxOpEstimate", "Decision"}, 22);
  bench::PrintRule(6, 22);

  for (const zoo::ConvSpec& spec : zoo::Table2ConvSpecs(scale)) {
    const bool scaled_model = spec.name == "LandCover";
    // LandCover batch-1 map at this scale, times the paper's
    // threshold-to-footprint ratio (2 GiB / 51 GiB ~= 1/25).
    const int64_t map_bytes = 4 * spec.image_h * spec.image_w *
                              spec.out_channels;
    const int64_t threshold =
        scaled_model ? std::max<int64_t>(1, map_bytes / 25)
                     : 2LL << 30;
    RuleBasedOptimizer optimizer(threshold);
    auto model = zoo::BuildFromSpec(spec, /*seed=*/1);
    if (!model.ok()) {
      std::fprintf(stderr, "build %s: %s\n", spec.name.c_str(),
                   model.status().ToString().c_str());
      return 1;
    }
    const int64_t batch = 1;
    auto shapes = model->InferShapes(batch);
    auto plan = optimizer.Optimize(*model, batch);
    if (!shapes.ok() || !plan.ok()) {
      std::fprintf(stderr, "%s: optimization failed\n",
                   spec.name.c_str());
      return 1;
    }
    int64_t max_estimate = 0;
    bool any_relational = false;
    for (const NodeDecision& d : plan->decisions) {
      max_estimate = std::max(max_estimate, d.estimated_bytes);
      any_relational |= d.repr == Repr::kRelational;
    }
    const Shape& out = (*shapes)[1];  // conv node output
    char input_desc[64], kernel_desc[64], out_desc[64];
    std::snprintf(input_desc, sizeof(input_desc),
                  "%lldx%lldx%lld",
                  static_cast<long long>(spec.image_h),
                  static_cast<long long>(spec.image_w),
                  static_cast<long long>(spec.image_c));
    std::snprintf(kernel_desc, sizeof(kernel_desc),
                  "%lldx%lldx%lldx%lld",
                  static_cast<long long>(spec.out_channels),
                  static_cast<long long>(spec.image_c),
                  static_cast<long long>(spec.kernel_h),
                  static_cast<long long>(spec.kernel_w));
    std::snprintf(out_desc, sizeof(out_desc), "%lldx%lldx%lld",
                  static_cast<long long>(out.dim(1)),
                  static_cast<long long>(out.dim(2)),
                  static_cast<long long>(out.dim(3)));
    bench::PrintRow({spec.name, input_desc, kernel_desc, out_desc,
                     bench::HumanBytes(max_estimate),
                     any_relational ? "relation-centric"
                                    : "udf-centric"},
                    22);
  }
  std::printf(
      "\nExpected shape (paper): DeepBench-CONV1 fits (udf-centric); "
      "LandCover's\noutput feature map exceeds the threshold and is "
      "lowered to relation-centric\nvia the spatial (im2col) "
      "rewriting.\n");
  return RunExtremeClassification();
}

}  // namespace
}  // namespace relserve

int main() { return relserve::Run(); }
