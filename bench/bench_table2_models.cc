// Table 2 of the paper: the convolutional model zoo and the
// optimizer's decision per model. The memory driver for conv is the
// output feature map (paper: LandCover's map is
// batch x 2500 x 2500 x 2048 — far beyond any whole-tensor arena).

#include <cstdio>

#include "bench_util.h"
#include "graph/model_zoo.h"
#include "optimizer/optimizer.h"

namespace relserve {
namespace {

int Run() {
  const double scale = bench::ScaleFromEnv();
  std::printf("Table 2: Convolutional models (stride 1, no padding), "
              "scale=%.3f\n"
              "(threshold: paper's 2 GiB for the unscaled "
              "DeepBench-CONV1; LandCover's feature map scales with "
              "scale^2, so its threshold keeps the paper's 2GiB/51GiB "
              "ratio)\n\n",
              scale);
  bench::PrintRow({"Model", "Input", "Kernel", "OutputMap",
                   "MaxOpEstimate", "Decision"}, 22);
  bench::PrintRule(6, 22);

  for (const zoo::ConvSpec& spec : zoo::Table2ConvSpecs(scale)) {
    const bool scaled_model = spec.name == "LandCover";
    // LandCover batch-1 map at this scale, times the paper's
    // threshold-to-footprint ratio (2 GiB / 51 GiB ~= 1/25).
    const int64_t map_bytes = 4 * spec.image_h * spec.image_w *
                              spec.out_channels;
    const int64_t threshold =
        scaled_model ? std::max<int64_t>(1, map_bytes / 25)
                     : 2LL << 30;
    RuleBasedOptimizer optimizer(threshold);
    auto model = zoo::BuildFromSpec(spec, /*seed=*/1);
    if (!model.ok()) {
      std::fprintf(stderr, "build %s: %s\n", spec.name.c_str(),
                   model.status().ToString().c_str());
      return 1;
    }
    const int64_t batch = 1;
    auto shapes = model->InferShapes(batch);
    auto plan = optimizer.Optimize(*model, batch);
    if (!shapes.ok() || !plan.ok()) {
      std::fprintf(stderr, "%s: optimization failed\n",
                   spec.name.c_str());
      return 1;
    }
    int64_t max_estimate = 0;
    bool any_relational = false;
    for (const NodeDecision& d : plan->decisions) {
      max_estimate = std::max(max_estimate, d.estimated_bytes);
      any_relational |= d.repr == Repr::kRelational;
    }
    const Shape& out = (*shapes)[1];  // conv node output
    char input_desc[64], kernel_desc[64], out_desc[64];
    std::snprintf(input_desc, sizeof(input_desc),
                  "%lldx%lldx%lld",
                  static_cast<long long>(spec.image_h),
                  static_cast<long long>(spec.image_w),
                  static_cast<long long>(spec.image_c));
    std::snprintf(kernel_desc, sizeof(kernel_desc),
                  "%lldx%lldx%lldx%lld",
                  static_cast<long long>(spec.out_channels),
                  static_cast<long long>(spec.image_c),
                  static_cast<long long>(spec.kernel_h),
                  static_cast<long long>(spec.kernel_w));
    std::snprintf(out_desc, sizeof(out_desc), "%lldx%lldx%lld",
                  static_cast<long long>(out.dim(1)),
                  static_cast<long long>(out.dim(2)),
                  static_cast<long long>(out.dim(3)));
    bench::PrintRow({spec.name, input_desc, kernel_desc, out_desc,
                     bench::HumanBytes(max_estimate),
                     any_relational ? "relation-centric"
                                    : "udf-centric"},
                    22);
  }
  std::printf(
      "\nExpected shape (paper): DeepBench-CONV1 fits (udf-centric); "
      "LandCover's\noutput feature map exceeds the threshold and is "
      "lowered to relation-centric\nvia the spatial (im2col) "
      "rewriting.\n");
  return 0;
}

}  // namespace
}  // namespace relserve

int main() { return relserve::Run(); }
