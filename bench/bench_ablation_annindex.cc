// Ablation A5: the ANN index behind the inference result cache.
// Paper Sec. 5(1) lists HNSW, IVF, and LSH as candidate in-RDBMS
// nearest-neighbor indexes; this bench compares their build time,
// lookup latency, and recall@1 on the cache's actual workload shape
// (clustered requests).

#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "cache/hnsw_index.h"
#include "cache/ivf_index.h"
#include "cache/lsh_index.h"
#include "common/random.h"
#include "common/timer.h"
#include "workloads/datasets.h"

namespace relserve {
namespace {

struct IndexEntry {
  std::string name;
  std::unique_ptr<AnnIndex> index;
};

int Run() {
  const int64_t n = 4000;
  const int64_t dim = 64;
  const int queries = 500;

  auto data = workloads::GenClusteredData(n + queries, dim, 20, 0.05f,
                                          13);
  if (!data.ok()) return 1;
  const float* base = data->features.data();

  std::vector<IndexEntry> entries;
  {
    HnswIndex::Config config;
    config.ef_search = 32;
    entries.push_back(
        {"hnsw", std::make_unique<HnswIndex>(dim, config)});
  }
  {
    IvfIndex::Config config;
    config.num_lists = 32;
    config.num_probes = 4;
    config.train_threshold = 512;
    entries.push_back({"ivf", std::make_unique<IvfIndex>(dim, config)});
  }
  {
    LshIndex::Config config;
    config.num_tables = 10;
    config.bucket_width = 2.0f;
    entries.push_back({"lsh", std::make_unique<LshIndex>(dim, config)});
  }

  std::printf("Ablation A5: ANN index comparison for the result cache "
              "(%lld vectors, dim %lld, %d queries)\n\n",
              static_cast<long long>(n), static_cast<long long>(dim),
              queries);
  bench::PrintRow({"Index", "Build(s)", "Lookup(us)", "Recall@1"});
  bench::PrintRule(4);

  // Brute-force ground truth for recall.
  std::vector<int64_t> truth(queries);
  for (int q = 0; q < queries; ++q) {
    const float* query = base + (n + q) * dim;
    int64_t best = 0;
    float best_d = 1e30f;
    for (int64_t i = 0; i < n; ++i) {
      float d = 0;
      const float* v = base + i * dim;
      for (int64_t j = 0; j < dim; ++j) {
        d += (query[j] - v[j]) * (query[j] - v[j]);
      }
      if (d < best_d) {
        best_d = d;
        best = i;
      }
    }
    truth[q] = best;
  }

  for (IndexEntry& entry : entries) {
    Timer build;
    for (int64_t i = 0; i < n; ++i) {
      std::vector<float> vec(base + i * dim, base + (i + 1) * dim);
      if (!entry.index->Add(vec).ok()) return 1;
    }
    const double build_s = build.ElapsedSeconds();

    int hits = 0;
    Timer lookup;
    for (int q = 0; q < queries; ++q) {
      std::vector<float> query(base + (n + q) * dim,
                               base + (n + q + 1) * dim);
      auto result = entry.index->Search(query, 1);
      if (!result.ok()) return 1;
      if (!result->empty() && (*result)[0].id == truth[q]) ++hits;
    }
    const double lookup_us =
        lookup.ElapsedSeconds() / queries * 1e6;

    char build_c[32], lookup_c[32], recall_c[32];
    std::snprintf(build_c, sizeof(build_c), "%.3f", build_s);
    std::snprintf(lookup_c, sizeof(lookup_c), "%.1f", lookup_us);
    std::snprintf(recall_c, sizeof(recall_c), "%.1f%%",
                  100.0 * hits / queries);
    bench::PrintRow({entry.name, build_c, lookup_c, recall_c});
  }
  std::printf(
      "\nExpected shape: HNSW gives the best recall/latency balance "
      "(the paper's\nchoice); IVF builds fastest with recall set by "
      "nprobe; LSH lookups are\ncheap hash probes with probabilistic "
      "recall.\n");
  return 0;
}

}  // namespace
}  // namespace relserve

int main() { return relserve::Run(); }
