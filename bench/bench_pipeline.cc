// Extension bench (paper Sec. 5(2)): DL-style operator pipelining vs
// whole-batch execution inside the RDBMS. Reports end-to-end latency
// and the peak working-arena footprint for each regime across
// micro-batch sizes — the memory-boundedness is the paper's argument
// for streaming operator UDFs.

#include <cstdio>

#include "bench_util.h"
#include "engine/hybrid_executor.h"
#include "engine/pipeline_executor.h"
#include "graph/model.h"
#include "workloads/datasets.h"

namespace relserve {
namespace {

InferencePlan AllUdf(const Model& model) {
  InferencePlan plan;
  for (const Node& node : model.nodes()) {
    plan.decisions.push_back(NodeDecision{node.id, Repr::kUdf, 0});
  }
  return plan;
}

int Run() {
  const int repeats = bench::RepeatsFromEnv();
  const int64_t batch = 4096;
  MemoryTracker tracker("bench");
  ExecContext ctx;
  ctx.tracker = &tracker;

  auto model = BuildFFNN("m", {256, 1024, 1024, 16}, 1);
  if (!model.ok()) return 1;
  auto prepared = PreparedModel::Prepare(&*model, AllUdf(*model), &ctx);
  if (!prepared.ok()) return 1;
  auto input = workloads::GenBatch(batch, Shape{256}, 7);
  if (!input.ok()) return 1;

  std::printf("Sec 5(2) extension: operator pipelining vs whole-batch "
              "UDF (FFNN 256/1024/1024/16, batch %lld)\n\n",
              static_cast<long long>(batch));
  bench::PrintRow({"Mode", "MicroBatch", "Latency(s)", "PeakArena"});
  bench::PrintRule(4);

  tracker.ResetPeak();
  auto whole = bench::TimeBest(repeats, [&]() -> Status {
    RELSERVE_ASSIGN_OR_RETURN(ExecOutput out,
                              HybridExecutor::Run(*prepared, *input,
                                                  &ctx));
    (void)out;
    return Status::OK();
  });
  bench::PrintRow({"whole-batch", "-", bench::Cell(whole),
                   bench::HumanBytes(tracker.peak_bytes())});

  for (int64_t micro : {64, 256, 1024}) {
    tracker.ResetPeak();
    PipelineConfig config;
    config.micro_batch_rows = micro;
    auto piped = bench::TimeBest(repeats, [&]() -> Status {
      RELSERVE_ASSIGN_OR_RETURN(
          Tensor out,
          PipelineExecutor::Run(*prepared, *input, &ctx, config));
      (void)out;
      return Status::OK();
    });
    bench::PrintRow({"pipelined", std::to_string(micro),
                     bench::Cell(piped),
                     bench::HumanBytes(tracker.peak_bytes())});
  }
  std::printf(
      "\nExpected shape: pipelining bounds peak memory near "
      "(stages x queue x micro-batch)\ninstead of whole-batch "
      "activations; on multicore hosts stage workers also\noverlap, "
      "trading a little per-chunk overhead for concurrency.\n");
  return 0;
}

}  // namespace
}  // namespace relserve

int main() { return relserve::Run(); }
