// Ablation A3 (DESIGN.md): buffer pool size — the paper's "20 GB
// buffer pool", scaled. With a pool smaller than the blocked tensors,
// relation-centric execution spills: evictions and disk I/O rise, and
// latency degrades gracefully instead of failing with OOM.

#include <cstdio>

#include "bench_util.h"
#include "graph/model.h"
#include "serving/serving_session.h"
#include "workloads/datasets.h"

namespace relserve {
namespace {

int Run() {
  const int repeats = bench::RepeatsFromEnv(1);
  const int64_t batch = 256;

  std::printf("Ablation A3: buffer pool sweep "
              "(relation-centric FFNN 2048/512/64, batch %lld; "
              "blocked data ~%s)\n\n",
              static_cast<long long>(batch),
              bench::HumanBytes((2048LL * 512 + 256 * 2048 +
                                 3 * 256 * 512 + 256 * 64) *
                                4)
                  .c_str());
  bench::PrintRow({"PoolSize", "Evictions", "DiskReads", "DiskWrites",
                   "Latency(s)"});
  bench::PrintRule(5);

  for (int64_t pages : {64, 128, 256, 512, 1024, 4096}) {
    ServingConfig config;
    config.working_memory_bytes = 2LL << 30;
    config.buffer_pool_pages = pages;
    config.block_rows = 256;
    config.block_cols = 256;
    ServingSession session(config);
    auto table =
        session.CreateTable("t", workloads::FeatureTableSchema());
    if (!table.ok()) return 1;
    if (!workloads::FillFeatureTable(*table, batch, 2048, 1).ok()) {
      return 1;
    }
    auto model = BuildFFNN("m", {2048, 512, 64}, 1);
    if (!model.ok() ||
        !session.RegisterModel(std::move(*model)).ok()) {
      return 1;
    }
    if (!session.Deploy("m", ServingMode::kForceRelational, batch)
             .ok()) {
      return 1;
    }
    auto latency = bench::TimeBest(repeats, [&]() -> Status {
      RELSERVE_ASSIGN_OR_RETURN(ExecOutput out,
                                session.Predict("m", "t"));
      (void)out;
      return Status::OK();
    });
    const BufferPoolStats stats =
        session.catalog()->pool()->stats();
    DiskManager* disk = session.catalog()->pool()->disk();
    bench::PrintRow({bench::HumanBytes(pages * kPageSize),
                     std::to_string(stats.evictions),
                     std::to_string(disk->num_reads()),
                     std::to_string(disk->num_writes()),
                     bench::Cell(latency)});
  }
  std::printf(
      "\nExpected shape: pools larger than the blocked working set "
      "never evict;\nshrinking the pool trades latency for memory — "
      "the query still completes\n(the paper's core claim for "
      "relation-centric processing).\n");
  return 0;
}

}  // namespace
}  // namespace relserve

int main() { return relserve::Run(); }
