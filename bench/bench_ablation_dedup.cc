// Ablation A4 (DESIGN.md): accuracy-aware deduplication tolerance
// (paper Sec. 4(1)). A weight matrix with near-duplicate structure
// (repeated embedding-like row groups plus noise) is chunked into
// blocks and deduplicated at increasing tolerances; we report storage
// saved vs the worst-case effect on inference outputs, plus the
// 8-bit quantized variant the storage optimizer would also keep.

#include <cmath>
#include <cstdio>
#include <cstring>

#include "bench_util.h"
#include "common/random.h"
#include "graph/model.h"
#include "kernels/kernels.h"
#include "storage/physical_block_index.h"
#include "storage/quantize.h"
#include "tensor/tensor_block.h"
#include "workloads/datasets.h"

namespace relserve {
namespace {

// Builds a [rows, cols] weight with `groups` distinct block patterns
// repeated with +-noise — the near-duplicate weight structure the
// paper's dedup targets (shared embeddings, repeated heads).
Result<Tensor> NearDuplicateWeight(int64_t rows, int64_t cols,
                                   int64_t block, int groups,
                                   float noise) {
  RELSERVE_ASSIGN_OR_RETURN(Tensor w, Tensor::Create(Shape{rows, cols}));
  Rng rng(17);
  std::vector<std::vector<float>> patterns(
      groups, std::vector<float>(block * block));
  for (auto& p : patterns) {
    for (float& v : p) v = rng.Normal(0.0f, 0.05f);
  }
  for (int64_t rb = 0; rb < rows / block; ++rb) {
    for (int64_t cb = 0; cb < cols / block; ++cb) {
      const auto& p =
          patterns[(rb * (cols / block) + cb) % groups];
      for (int64_t r = 0; r < block; ++r) {
        for (int64_t c = 0; c < block; ++c) {
          w.At(rb * block + r, cb * block + c) =
              p[r * block + c] + rng.Normal(0.0f, noise);
        }
      }
    }
  }
  return w;
}

int Run() {
  const int64_t rows = 1024, cols = 1024, block = 128;
  const int groups = 6;
  const float noise = 2e-4f;

  auto weight = NearDuplicateWeight(rows, cols, block, groups, noise);
  if (!weight.ok()) return 1;
  auto input = workloads::GenBatch(64, Shape{cols}, 9);
  if (!input.ok()) return 1;
  auto reference = kernels::MatMul(*input, *weight, true);
  if (!reference.ok()) return 1;

  std::printf("Ablation A4: accuracy-aware dedup tolerance sweep "
              "(weight %lldx%lld, %lldx%lld blocks, %d latent "
              "patterns)\n\n",
              static_cast<long long>(rows),
              static_cast<long long>(cols),
              static_cast<long long>(block),
              static_cast<long long>(block), groups);
  bench::PrintRow({"Tolerance", "UniqueBlocks", "Compression",
                   "MaxWeightErr", "MaxOutputErr"});
  bench::PrintRule(5);

  auto blocks = SplitMatrix(*weight, block, block);
  if (!blocks.ok()) return 1;
  const BlockedShape geometry{rows, cols, block, block};

  for (float tolerance :
       {0.0f, 1e-4f, 5e-4f, 1e-3f, 5e-3f, 1e-2f}) {
    auto dedup = DeduplicateBlocks(*blocks, tolerance);
    if (!dedup.ok()) return 1;
    auto restored = AssembleMatrix(ExpandDedup(*dedup), geometry);
    if (!restored.ok()) return 1;
    auto output = kernels::MatMul(*input, *restored, true);
    if (!output.ok()) return 1;
    char tol[32], comp[32], werr[32], oerr[32];
    std::snprintf(tol, sizeof(tol), "%.0e", tolerance);
    std::snprintf(comp, sizeof(comp), "%.2fx",
                  dedup->stats.CompressionRatio());
    std::snprintf(werr, sizeof(werr), "%.2e",
                  weight->MaxAbsDiff(*restored));
    std::snprintf(oerr, sizeof(oerr), "%.2e",
                  reference->MaxAbsDiff(*output));
    bench::PrintRow({tol, std::to_string(dedup->stats.unique_blocks),
                     comp, werr, oerr});
  }

  // The quantized model version the storage optimizer can also serve.
  auto q = QuantizeUniform8(*weight);
  if (!q.ok()) return 1;
  auto dq = Dequantize(*q);
  if (!dq.ok()) return 1;
  auto q_out = kernels::MatMul(*input, *dq, true);
  if (!q_out.ok()) return 1;
  char werr[32], oerr[32];
  std::snprintf(werr, sizeof(werr), "%.2e", QuantizationError(*weight, *q));
  std::snprintf(oerr, sizeof(oerr), "%.2e",
                reference->MaxAbsDiff(*q_out));
  bench::PrintRow({"int8-quant", "-", "4.00x", werr, oerr});

  std::printf(
      "\nExpected shape: tolerances at the noise scale collapse the "
      "blocks to the\nlatent patterns (large compression, bounded "
      "output error); tolerances far\nbelow it save nothing. The "
      "SLA-aware optimizer picks the version whose\noutput error fits "
      "the application.\n");
  return 0;
}

}  // namespace
}  // namespace relserve

int main() { return relserve::Run(); }
