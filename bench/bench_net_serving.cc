// Network serving front-end throughput (DESIGN.md "Network serving
// front-end"): a closed-loop multi-connection load generator driving
// the epoll NetServer over loopback, against the in-process
// scheduler baseline (same client count, no sockets).
//
// The generator is itself a single-threaded epoll loop holding every
// connection — hundreds of concurrent sockets, one outstanding
// 1-row predict per connection, next request sent the instant the
// reply lands. All clients ship the *same* input row, so every reply
// must be bit-identical to the in-process prediction: the harness
// counts dropped and corrupted replies (both must be zero) while
// measuring what the wire + framing + completion path costs on top of
// the scheduler it wraps.
//
// Reported per client count: network QPS, p50/p99 latency,
// bytes/request on the wire, the in-process baseline QPS, and the
// network/in-process ratio — as a table and BENCH_JSON lines.
//
// Env knobs:
//   RELSERVE_NET_CLIENTS  — comma-separated connection counts
//                           (default "8,64,256")
//   RELSERVE_NET_REQUESTS — requests per connection (default 128)

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <arpa/inet.h>
#include <fcntl.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/io_util.h"
#include "common/timer.h"
#include "graph/model.h"
#include "net/buffer.h"
#include "net/server.h"
#include "net/wire.h"
#include "serving/request_scheduler.h"
#include "serving/serving_session.h"
#include "workloads/datasets.h"

namespace relserve {
namespace {

constexpr int64_t kDim = 28;
const char* kModel = "net-ffnn";

int RequestsPerConn() {
  const char* s = std::getenv("RELSERVE_NET_REQUESTS");
  // Long enough that the closed loop reaches steady state: short runs
  // are dominated by scheduler batching phase-in and timing noise.
  return s != nullptr ? std::atoi(s) : 128;
}

std::vector<int> ClientCounts() {
  const char* s = std::getenv("RELSERVE_NET_CLIENTS");
  if (s == nullptr || *s == '\0') return {8, 64, 256};
  std::vector<int> counts;
  for (const char* p = s; *p != '\0';) {
    char* end = nullptr;
    const long v = std::strtol(p, &end, 10);
    if (end == p) break;
    if (v > 0) counts.push_back(static_cast<int>(v));
    p = (*end == ',') ? end + 1 : end;
  }
  return counts.empty() ? std::vector<int>{8, 64, 256} : counts;
}

struct RunResult {
  double qps = 0.0;
  bench::LatencySummary latency;  // milliseconds
  int64_t replies = 0;
  int64_t dropped = 0;
  int64_t corrupted = 0;
  double bytes_per_request = 0.0;
  double mean_batch_rows = 0.0;  // scheduler coalescing this phase
};

double MeanBatchRowsDelta(const SchedulerStats& before,
                          const SchedulerStats& after) {
  const int64_t batches = after.batches.load() - before.batches.load();
  const int64_t rows =
      after.total_rows.load() - before.total_rows.load();
  return batches > 0
             ? static_cast<double>(rows) / static_cast<double>(batches)
             : 0.0;
}

// Start gate: workers finish their setup (thread spawn, socket
// connects), then every mode measures the same thing — steady-state
// request throughput from a standing start.
struct StartGate {
  std::mutex mu;
  std::condition_variable cv;
  int ready = 0;
  bool go = false;

  void Arrive() {
    std::unique_lock<std::mutex> lock(mu);
    ++ready;
    cv.notify_all();
    cv.wait(lock, [this] { return go; });
  }
  void WaitReady(int total) {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return ready >= total; });
  }
  void Go() {
    std::lock_guard<std::mutex> lock(mu);
    go = true;
    cv.notify_all();
  }
};

// In-process baseline: same closed loop, straight into the scheduler.
RunResult RunInProcess(RequestScheduler* scheduler, const Tensor& row,
                       int clients, int per_client) {
  std::vector<std::vector<double>> lat_ms(clients);
  std::vector<std::thread> threads;
  std::atomic<int64_t> failed{0};
  StartGate gate;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      gate.Arrive();
      for (int r = 0; r < per_client; ++r) {
        Timer t;
        auto out = scheduler->PredictBatch(kModel, row);
        if (!out.ok()) {
          failed.fetch_add(1);
          continue;
        }
        lat_ms[c].push_back(t.ElapsedSeconds() * 1e3);
      }
    });
  }
  gate.WaitReady(clients);
  Timer wall;
  gate.Go();
  for (std::thread& t : threads) t.join();
  const double wall_s = wall.ElapsedSeconds();
  std::vector<double> all;
  for (const auto& v : lat_ms) {
    all.insert(all.end(), v.begin(), v.end());
  }
  RunResult result;
  result.replies = static_cast<int64_t>(all.size());
  result.dropped = failed.load();
  result.qps = static_cast<double>(all.size()) / wall_s;
  result.latency = bench::Summarize(all);
  return result;
}

// One loopback connection of the closed-loop epoll generator.
struct GenConn {
  int fd = -1;
  net::Buffer in;
  net::Buffer out;
  int sent = 0;
  int received = 0;
  std::chrono::steady_clock::time_point sent_at;
};

Status SendNext(GenConn* conn, const Tensor& row, uint64_t conn_id) {
  const uint64_t request_id =
      conn_id * 1000000 + static_cast<uint64_t>(conn->sent);
  net::AppendPredictRequest(request_id, kModel, row, /*deadline_us=*/0,
                            &conn->out);
  conn->sent_at = std::chrono::steady_clock::now();
  ++conn->sent;
  while (!conn->out.empty()) {
    const ssize_t n =
        io::WriteSome(conn->fd, conn->out.data(), conn->out.size());
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      return Status::IOError(std::string("write: ") +
                             std::strerror(errno));
    }
    conn->out.Consume(static_cast<size_t>(n));
  }
  return Status::OK();
}

struct ShardOut {
  std::vector<double> lat_ms;
  int64_t dropped = 0;
  int64_t corrupted = 0;
};

// One generator shard: `clients` concurrent loopback connections, one
// outstanding request each, driven by one epoll loop.
Result<ShardOut> RunShard(uint16_t port, const Tensor& row,
                          const Tensor& expected, int clients,
                          int per_client, StartGate* gate) {
  std::vector<GenConn> conns(clients);
  int epoll_fd = -1;
  const Status setup = [&]() -> Status {
    epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd < 0) {
      return Status::IOError("epoll_create1 failed");
    }
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);

    for (int c = 0; c < clients; ++c) {
      const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
      if (fd < 0) {
        return Status::IOError("socket: out of descriptors at conn " +
                               std::to_string(c));
      }
      const int rc = static_cast<int>(io::RetryEintr([&] {
        return ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                         sizeof(addr));
      }));
      if (rc != 0) {
        return Status::IOError(std::string("connect: ") +
                               std::strerror(errno));
      }
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL, 0) | O_NONBLOCK);
      conns[c].fd = fd;
      epoll_event ev;
      std::memset(&ev, 0, sizeof(ev));
      ev.events = EPOLLIN;  // level-triggered: fine for the generator
      ev.data.u32 = static_cast<uint32_t>(c);
      ::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, fd, &ev);
    }
    return Status::OK();
  }();

  ShardOut result;
  std::vector<double>& lat_ms = result.lat_ms;
  lat_ms.reserve(static_cast<size_t>(clients) * per_client);
  const int64_t total = static_cast<int64_t>(clients) * per_client;
  int64_t received = 0;
  const size_t expected_bytes =
      static_cast<size_t>(expected.shape().NumElements()) *
      sizeof(float);

  // Connections are up (or setup failed — arrive either way so the
  // gate never hangs); waiting for every shard before the first byte
  // means the wall clock measures steady-state serving, not TCP
  // setup.
  gate->Arrive();
  if (!setup.ok()) {
    for (GenConn& conn : conns) {
      if (conn.fd >= 0) ::close(conn.fd);
    }
    if (epoll_fd >= 0) ::close(epoll_fd);
    return setup;
  }
  for (int c = 0; c < clients; ++c) {
    RELSERVE_RETURN_NOT_OK(
        SendNext(&conns[c], row, static_cast<uint64_t>(c)));
  }

  epoll_event events[128];
  while (received < total) {
    const int n = static_cast<int>(io::RetryEintr([&] {
      return ::epoll_wait(epoll_fd, events, 128, 5000);
    }));
    if (n == 0) {
      // 5s of silence with requests outstanding: count them dropped.
      result.dropped = total - received;
      break;
    }
    for (int i = 0; i < n; ++i) {
      GenConn& conn = conns[events[i].data.u32];
      bool closed = false;
      while (true) {
        constexpr size_t kChunk = 16 * 1024;
        char* span = conn.in.WritableSpan(kChunk);
        const ssize_t r = io::ReadSome(conn.fd, span, kChunk);
        if (r > 0) {
          conn.in.CommitWrite(static_cast<size_t>(r));
          // Short read = socket drained; skip the EAGAIN syscall
          // (level-triggered epoll re-fires if more arrives).
          if (static_cast<size_t>(r) < kChunk) break;
          continue;
        }
        if (r == 0) closed = true;
        break;
      }
      while (conn.in.size() >= net::kLenPrefixBytes) {
        uint32_t frame_len = 0;
        std::memcpy(&frame_len, conn.in.data(), sizeof(frame_len));
        if (conn.in.size() < net::kLenPrefixBytes + frame_len) break;
        const char* frame = conn.in.data() + net::kLenPrefixBytes;
        auto header = net::DecodeFrameHeader(frame, frame_len);
        Result<net::Reply> reply =
            header.ok()
                ? net::DecodeReply(*header,
                                   frame + net::kFrameHeaderBytes,
                                   frame_len - net::kFrameHeaderBytes)
                : Result<net::Reply>(header.status());
        const auto now = std::chrono::steady_clock::now();
        if (!reply.ok() || !reply->status.ok() ||
            reply->tensor.shape().NumElements() !=
                expected.shape().NumElements() ||
            std::memcmp(reply->tensor.data(), expected.data(),
                        expected_bytes) != 0) {
          ++result.corrupted;
        } else {
          lat_ms.push_back(
              std::chrono::duration<double, std::milli>(
                  now - conn.sent_at)
                  .count());
        }
        ++received;
        ++conn.received;
        conn.in.Consume(net::kLenPrefixBytes + frame_len);
        if (conn.sent < per_client) {
          RELSERVE_RETURN_NOT_OK(SendNext(
              &conn, row, events[i].data.u32));
        }
      }
      if (closed && conn.received < per_client) {
        result.dropped += per_client - conn.received;
        received += per_client - conn.received;
        ::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, conn.fd, nullptr);
        ::close(conn.fd);
        conn.fd = -1;
        conn.received = per_client;
      }
    }
  }
  for (GenConn& conn : conns) {
    if (conn.fd >= 0) ::close(conn.fd);
  }
  ::close(epoll_fd);
  return result;
}

// The load generator: shards the connections across a few epoll
// threads so the generator itself — not the server — is never the
// syscall-throughput ceiling (the in-process baseline it races gets
// one thread per client).
Result<RunResult> RunNetwork(uint16_t port, const Tensor& row,
                             const Tensor& expected, int clients,
                             int per_client) {
  const int want = clients >= 32 ? 4 : (clients >= 8 ? 2 : 1);
  // More generator shards than cores just preempt each other (and the
  // server) on a small machine.
  const int hw = std::max(
      1, static_cast<int>(std::thread::hardware_concurrency()));
  const int shards = std::min(want, hw);
  std::vector<Result<ShardOut>> outs(
      shards, Result<ShardOut>(Status::Internal("shard not run")));
  std::vector<std::thread> threads;
  StartGate gate;
  for (int s = 0; s < shards; ++s) {
    const int share =
        clients / shards + (s < clients % shards ? 1 : 0);
    threads.emplace_back([&, s, share] {
      outs[s] =
          RunShard(port, row, expected, share, per_client, &gate);
    });
  }
  gate.WaitReady(shards);
  Timer wall;
  gate.Go();
  for (std::thread& t : threads) t.join();
  const double wall_s = wall.ElapsedSeconds();

  RunResult result;
  std::vector<double> all;
  for (Result<ShardOut>& out : outs) {
    RELSERVE_RETURN_NOT_OK(out.status());
    all.insert(all.end(), out->lat_ms.begin(), out->lat_ms.end());
    result.dropped += out->dropped;
    result.corrupted += out->corrupted;
  }
  result.replies = static_cast<int64_t>(all.size());
  result.qps = static_cast<double>(all.size()) / wall_s;
  result.latency = bench::Summarize(all);
  return result;
}

void Report(const std::string& mode, int clients, const RunResult& r,
            double ratio) {
  char qps[24], p50[24], p99[24], bpr[24], ratio_s[24];
  std::snprintf(qps, sizeof(qps), "%.0f", r.qps);
  std::snprintf(p50, sizeof(p50), "%.3f", r.latency.p50);
  std::snprintf(p99, sizeof(p99), "%.3f", r.latency.p99);
  std::snprintf(bpr, sizeof(bpr), "%.0f", r.bytes_per_request);
  std::snprintf(ratio_s, sizeof(ratio_s),
                ratio > 0.0 ? "%.2f" : "-", ratio);
  bench::PrintRow({mode, std::to_string(clients), qps, p50, p99,
                   std::to_string(r.dropped),
                   std::to_string(r.corrupted), bpr, ratio_s},
                  12);
  bench::PrintBenchJson(
      "net_serving",
      {{"mode", bench::JsonStr(mode)},
       {"clients", bench::JsonNum(clients)},
       {"qps", bench::JsonNum(r.qps)},
       {"p50_ms", bench::JsonNum(r.latency.p50)},
       {"p99_ms", bench::JsonNum(r.latency.p99)},
       {"mean_ms", bench::JsonNum(r.latency.mean)},
       {"replies", bench::JsonNum(static_cast<double>(r.replies))},
       {"dropped", bench::JsonNum(static_cast<double>(r.dropped))},
       {"corrupted",
        bench::JsonNum(static_cast<double>(r.corrupted))},
       {"bytes_per_request", bench::JsonNum(r.bytes_per_request)},
       {"mean_batch_rows", bench::JsonNum(r.mean_batch_rows)},
       {"net_vs_inprocess", bench::JsonNum(ratio)}});
}

Status Run() {
  ServingConfig config;
  config.working_memory_bytes = 4LL << 30;
  ServingSession session(config);

  RELSERVE_ASSIGN_OR_RETURN(
      Model model, BuildFFNN(kModel, {kDim, 64, 4}, /*seed=*/3));
  RELSERVE_RETURN_NOT_OK(session.RegisterModel(std::move(model)));
  RELSERVE_RETURN_NOT_OK(
      session.Deploy(kModel, ServingMode::kForceUdf, 256).status());

  SchedulerConfig sched_config;
  sched_config.max_batch_rows = 256;
  sched_config.max_delay_us = 200;
  sched_config.num_workers = 2;
  RequestScheduler scheduler(&session, sched_config);

  // The request row every connection ships, and the reply bytes every
  // connection must get back, bit for bit.
  RELSERVE_ASSIGN_OR_RETURN(Tensor row,
                            workloads::GenBatch(1, Shape{kDim}, 42));
  RELSERVE_ASSIGN_OR_RETURN(Tensor expected,
                            scheduler.PredictBatch(kModel, row));

  net::NetServerConfig net_config;
  net_config.num_completers = 2;
  RELSERVE_ASSIGN_OR_RETURN(
      auto server, net::NetServer::Start(&session, &scheduler,
                                         net_config));

  const int per_client = RequestsPerConn();
  const std::vector<int> client_counts = ClientCounts();

  std::printf("Network serving front-end: closed-loop loopback "
              "connections, 1-row predicts, %d requests/connection\n"
              "(every reply verified bit-identical to the in-process "
              "prediction)\n\n",
              per_client);
  bench::PrintRow({"mode", "clients", "qps", "p50_ms", "p99_ms",
                   "dropped", "corrupt", "bytes_req", "ratio"},
                  12);
  bench::PrintRule(9, 12);

  for (const int clients : client_counts) {
    const SchedulerStats sched_before_in = scheduler.stats();
    RunResult inproc =
        RunInProcess(&scheduler, row, clients, per_client);
    inproc.mean_batch_rows =
        MeanBatchRowsDelta(sched_before_in, scheduler.stats());
    Report("inprocess", clients, inproc, 0.0);

    const SchedulerStats sched_before_net = scheduler.stats();
    const net::NetServerStats before = server->stats();
    RELSERVE_ASSIGN_OR_RETURN(
        RunResult net,
        RunNetwork(server->port(), row, expected, clients,
                   per_client));
    const net::NetServerStats after = server->stats();
    net.mean_batch_rows =
        MeanBatchRowsDelta(sched_before_net, scheduler.stats());
    const int64_t wire_bytes =
        (after.bytes_in.load() - before.bytes_in.load()) +
        (after.bytes_out.load() - before.bytes_out.load());
    if (net.replies > 0) {
      net.bytes_per_request =
          static_cast<double>(wire_bytes) /
          static_cast<double>(net.replies);
    }
    const double ratio =
        inproc.qps > 0.0 ? net.qps / inproc.qps : 0.0;
    Report("network", clients, net, ratio);
    if (net.dropped != 0 || net.corrupted != 0) {
      return Status::Internal(
          std::to_string(net.dropped) + " dropped / " +
          std::to_string(net.corrupted) +
          " corrupted replies at " + std::to_string(clients) +
          " clients");
    }
  }

  server->Shutdown();
  scheduler.Shutdown();
  return Status::OK();
}

}  // namespace
}  // namespace relserve

int main() {
  relserve::Status status = relserve::Run();
  if (!status.ok()) {
    std::fprintf(stderr, "bench_net_serving: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  return 0;
}
