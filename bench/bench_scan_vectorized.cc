// Vectorized columnar scan vs the row-at-a-time path.
//
// Builds the same feature table twice — a row heap and a columnar
// table — and measures rows/s through three pipelines:
//   scan          — full-table scan, all columns
//   scan+filter   — predicate on id at several selectivities
//   scan->tile    — filter + project the float-vector feature column
//                   straight into a packed [n, width] GEMM input tile
// The row path boxes every value through Row/Value; the columnar path
// runs branch-free selection vectors over contiguous chunks and one
// memcpy per fragment into the tile. The columnar pipelines also run
// fragment-parallel on a 4-worker pool (morsel = fragment); on a
// single-core machine that speedup is ~1.0 by construction.
//
// Each measurement is emitted both as a table row and as a standard
// BENCH JSON line (grep ^BENCH_JSON).

#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "engine/physical_plan.h"
#include "relational/expression.h"
#include "relational/operator.h"
#include "relational/vectorized.h"
#include "resource/memory_tracker.h"
#include "resource/thread_pool.h"
#include "storage/buffer_pool.h"
#include "storage/column_store.h"
#include "storage/disk_manager.h"
#include "storage/table_heap.h"

namespace relserve {
namespace {

constexpr int64_t kFeatureWidth = 64;

// A feature table shaped like the paper's serving workloads: the
// model input column plus the usual metadata baggage. The row format
// must deserialize every column on every scan; the columnar scan
// reads only the streams the query touches.
Schema BenchSchema() {
  return Schema({{"id", ValueType::kInt64},
                 {"score", ValueType::kFloat64},
                 {"user", ValueType::kString},
                 {"label", ValueType::kString},
                 {"ts", ValueType::kInt64},
                 {"weight", ValueType::kFloat64},
                 {"split", ValueType::kInt64},
                 {"features", ValueType::kFloatVector}});
}

constexpr int kFeatureCol = 7;

Row BenchRow(int64_t i) {
  std::vector<float> features(kFeatureWidth);
  for (int64_t j = 0; j < kFeatureWidth; ++j) {
    features[j] = static_cast<float>((i + j) % 97) * 0.25f;
  }
  return Row({Value(i), Value(static_cast<double>(i % 11) * 0.5),
              Value("user_" + std::to_string(i % 1000)),
              Value(std::string(i % 2 == 0 ? "train" : "eval")),
              Value(int64_t{1700000000} + i),
              Value(1.0 + static_cast<double>(i % 5)),
              Value(i % 10), Value(std::move(features))});
}

// id < cutoff keeps the first `cutoff` rows: selectivity = cutoff / n.
ExprPtr IdBelow(int64_t cutoff) {
  return Expression::Binary(ExprKind::kLt, Expression::Column(0),
                            Expression::Literal(Value(cutoff)));
}

struct Tables {
  DiskManager disk;
  BufferPool pool;
  Schema schema = BenchSchema();
  TableHeap heap;
  ColumnarTable columnar;

  explicit Tables(int64_t rows)
      : pool(&disk, 2048), heap(&pool), columnar(&pool, BenchSchema()) {
    for (int64_t i = 0; i < rows; ++i) {
      Row row = BenchRow(i);
      std::string bytes;
      row.SerializeTo(&bytes);
      Status s = heap.Append(bytes);
      if (s.ok()) s = columnar.AppendRow(row);
      if (!s.ok()) {
        std::fprintf(stderr, "table build failed: %s\n",
                     s.ToString().c_str());
        std::abort();
      }
    }
  }
};

// Row path: SeqScan (+ Filter) and drain the iterator.
Result<int64_t> RowScan(Tables* t, const ExprPtr& pred) {
  RowIteratorPtr it = std::make_unique<SeqScan>(&t->heap, t->schema);
  if (pred != nullptr) it = std::make_unique<Filter>(std::move(it), pred);
  RELSERVE_RETURN_NOT_OK(it->Open());
  Row row;
  int64_t emitted = 0;
  while (true) {
    RELSERVE_ASSIGN_OR_RETURN(bool has, it->Next(&row));
    if (!has) break;
    ++emitted;
  }
  return emitted;
}

// Row path feeding a GEMM tile: boxed rows, per-row vector copy.
Result<int64_t> RowScanToTile(Tables* t, const ExprPtr& pred,
                              std::vector<float>* tile) {
  RowIteratorPtr it = std::make_unique<SeqScan>(&t->heap, t->schema);
  if (pred != nullptr) it = std::make_unique<Filter>(std::move(it), pred);
  RELSERVE_RETURN_NOT_OK(it->Open());
  tile->clear();
  Row row;
  int64_t emitted = 0;
  while (true) {
    RELSERVE_ASSIGN_OR_RETURN(bool has, it->Next(&row));
    if (!has) break;
    const std::vector<float>& features =
        row.value(kFeatureCol).AsFloatVector();
    if (static_cast<int64_t>(features.size()) != kFeatureWidth) {
      return Status::InvalidArgument("bad feature width");
    }
    tile->insert(tile->end(), features.begin(), features.end());
    ++emitted;
  }
  return emitted;
}

Result<int64_t> ColScan(Tables* t, const ExprPtr& pred, ThreadPool* pool,
                        bool* went_parallel) {
  ColumnarScanOptions opts;
  opts.predicate = pred;
  opts.pool = pool;
  opts.force_serial = pool == nullptr;
  RELSERVE_ASSIGN_OR_RETURN(ColumnarScanOutput out,
                            ColumnarScan(t->columnar, opts));
  if (went_parallel != nullptr) *went_parallel = out.parallel;
  return out.rows_emitted;
}

Result<int64_t> ColScanToTile(Tables* t, const ExprPtr& pred,
                              ThreadPool* pool, MemoryTracker* tracker,
                              bool* went_parallel) {
  ColumnarScanOptions opts;
  opts.predicate = pred;
  opts.projection = {kFeatureCol};
  opts.pool = pool;
  opts.force_serial = pool == nullptr;
  RELSERVE_ASSIGN_OR_RETURN(ColumnarScanOutput out,
                            ColumnarScan(t->columnar, opts));
  if (went_parallel != nullptr) *went_parallel = out.parallel;
  PhysicalStage stage;
  stage.kind = StageKind::kColumnarGather;
  stage.label = "pivot bench";
  RELSERVE_ASSIGN_OR_RETURN(
      Tensor tile, ExecuteColumnarGather(stage, out.batches, 0,
                                         kFeatureWidth, "features", tracker));
  (void)tile;
  return out.rows_emitted;
}

struct Measurement {
  double seconds = 0.0;
  int64_t emitted = 0;
  bool parallel = false;
};

int Run() {
  const int repeats = bench::RepeatsFromEnv(3);
  const char* rows_env = std::getenv("RELSERVE_SCAN_ROWS");
  const int64_t rows = rows_env != nullptr ? std::atoll(rows_env) : 100000;
  Tables tables(rows);
  ThreadPool pool(4);
  MemoryTracker tracker("bench_scan_vectorized");

  std::printf(
      "Vectorized scan: %lld rows x 8 columns (feature = float[%lld]), "
      "fragment=%lld rows (hardware threads: %u)\n\n",
      static_cast<long long>(rows),
      static_cast<long long>(kFeatureWidth),
      static_cast<long long>(ColumnarTable::kDefaultFragmentRows),
      std::thread::hardware_concurrency());
  bench::PrintRow({"Pipeline", "Select%", "Path", "Rows/s", "vs row"});
  bench::PrintRule(5);

  struct Config {
    const char* pipeline;
    double selectivity;  // < 0 = no predicate
  };
  const Config configs[] = {
      {"scan", -1.0},         {"scan+filter", 0.01},
      {"scan+filter", 0.10},  {"scan+filter", 0.50},
      {"scan+filter", 0.90},  {"scan->tile", -1.0},
      {"scan->tile", 0.50},
  };

  for (const Config& config : configs) {
    const bool tile = std::strcmp(config.pipeline, "scan->tile") == 0;
    ExprPtr pred;
    if (config.selectivity >= 0.0) {
      pred = IdBelow(static_cast<int64_t>(
          static_cast<double>(rows) * config.selectivity));
    }

    Measurement row_m, col1_m, col4_m;
    std::vector<float> row_tile;
    row_tile.reserve(static_cast<size_t>(rows * kFeatureWidth));
    Result<double> row_s = bench::TimeBest(repeats, [&]() -> Status {
      RELSERVE_ASSIGN_OR_RETURN(
          row_m.emitted, tile ? RowScanToTile(&tables, pred, &row_tile)
                              : RowScan(&tables, pred));
      return Status::OK();
    });
    Result<double> col1_s = bench::TimeBest(repeats, [&]() -> Status {
      RELSERVE_ASSIGN_OR_RETURN(
          col1_m.emitted,
          tile ? ColScanToTile(&tables, pred, nullptr, &tracker,
                               &col1_m.parallel)
               : ColScan(&tables, pred, nullptr, &col1_m.parallel));
      return Status::OK();
    });
    Result<double> col4_s = bench::TimeBest(repeats, [&]() -> Status {
      RELSERVE_ASSIGN_OR_RETURN(
          col4_m.emitted,
          tile ? ColScanToTile(&tables, pred, &pool, &tracker,
                               &col4_m.parallel)
               : ColScan(&tables, pred, &pool, &col4_m.parallel));
      return Status::OK();
    });
    if (!row_s.ok() || !col1_s.ok() || !col4_s.ok()) {
      std::fprintf(stderr, "%s failed: %s %s %s\n", config.pipeline,
                   row_s.status().ToString().c_str(),
                   col1_s.status().ToString().c_str(),
                   col4_s.status().ToString().c_str());
      return 1;
    }
    if (row_m.emitted != col1_m.emitted ||
        row_m.emitted != col4_m.emitted) {
      std::fprintf(stderr, "row/columnar emitted mismatch: %lld %lld %lld\n",
                   static_cast<long long>(row_m.emitted),
                   static_cast<long long>(col1_m.emitted),
                   static_cast<long long>(col4_m.emitted));
      return 1;
    }
    row_m.seconds = *row_s;
    col1_m.seconds = *col1_s;
    col4_m.seconds = *col4_s;

    const double row_rps = static_cast<double>(rows) / row_m.seconds;
    const double col1_rps = static_cast<double>(rows) / col1_m.seconds;
    const double col4_rps = static_cast<double>(rows) / col4_m.seconds;
    char sel_cell[16];
    if (config.selectivity < 0.0) {
      std::snprintf(sel_cell, sizeof(sel_cell), "all");
    } else {
      std::snprintf(sel_cell, sizeof(sel_cell), "%.0f%%",
                    config.selectivity * 100.0);
    }
    auto print_path = [&](const char* path, double rps, bool parallel) {
      char rps_cell[32], ratio_cell[32];
      std::snprintf(rps_cell, sizeof(rps_cell), "%.3g", rps);
      std::snprintf(ratio_cell, sizeof(ratio_cell), "%.2fx",
                    rps / row_rps);
      bench::PrintRow({config.pipeline, sel_cell, path, rps_cell,
                       ratio_cell});
      bench::PrintBenchJson(
          "scan_vectorized",
          {{"pipeline", bench::JsonStr(config.pipeline)},
           {"selectivity", bench::JsonNum(
                               config.selectivity < 0.0
                                   ? 1.0
                                   : config.selectivity)},
           {"path", bench::JsonStr(path)},
           {"rows", std::to_string(rows)},
           {"rows_per_s", bench::JsonNum(rps)},
           {"speedup_vs_row", bench::JsonNum(rps / row_rps)},
           {"parallel", parallel ? "true" : "false"}});
    };
    print_path("row", row_rps, false);
    print_path("columnar-1t", col1_rps, false);
    print_path("columnar-4t", col4_rps, col4_m.parallel);
    std::printf("\n");
  }

  std::printf(
      "Expected shape: the columnar path wins by avoiding Row/Value "
      "boxing —\nlargest on scan->tile where the feature column moves "
      "as one memcpy per\nfragment; 4t only beats 1t on real "
      "multi-core hardware.\n");
  return 0;
}

}  // namespace
}  // namespace relserve

int main() { return relserve::Run(); }
