// Dispatch-overhead microbenchmark for compile-once physical plans:
// per-request latency of (a) a graph-walking interpreter that
// re-resolves every node and weight per request (the architecture this
// PR removed — reconstructed locally as the baseline), (b) the
// compiled PhysicalPlan with elementwise fusion disabled, and (c) the
// compiled fused pipeline. Also reports one-time compile cost.
//
// Claim under test: on small-batch FFNN inference, where per-node
// dispatch is a visible fraction of the request, compiled+fused must
// be at least as fast as the interpreter; on large-batch relational
// plans (kernel-bound) fusion must not regress.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/timer.h"
#include "engine/hybrid_executor.h"
#include "engine/physical_plan.h"
#include "engine/prepared_model.h"
#include "graph/model.h"
#include "kernels/kernels.h"
#include "optimizer/optimizer.h"
#include "storage/buffer_pool.h"
#include "workloads/datasets.h"

namespace relserve {
namespace {

// The pre-compilation execution model: walk the logical graph per
// request, switch on OpKind per node, and fetch the weight from the
// model per node. Whole-tensor only — enough to isolate dispatch
// overhead against the compiled UDF pipeline, which runs the same
// kernels.
Result<Tensor> InterpretUdf(const Model& model,
                            const InferencePlan& plan,
                            const Tensor& input, ExecContext* ctx) {
  // Per-request shape inference and per-node decision lookups: the
  // work the interpreter repeated on every call and compilation now
  // does once at deploy time.
  RELSERVE_ASSIGN_OR_RETURN(std::vector<Shape> shapes,
                            model.InferShapes(input.shape().dim(0)));
  (void)shapes;  // the interpreter consulted these for Ensure* reshapes
  const Tensor* cur = &input;
  Tensor owned;
  for (const Node& node : model.nodes()) {
    if (node.kind != OpKind::kInput &&
        plan.decisions[node.id].repr != Repr::kUdf) {
      return Status::InvalidArgument("interpreter is UDF-only");
    }
    switch (node.kind) {
      case OpKind::kInput:
        break;
      case OpKind::kMatMul: {
        RELSERVE_ASSIGN_OR_RETURN(const Tensor* w,
                                  model.GetWeight(node.weight_name));
        RELSERVE_ASSIGN_OR_RETURN(
            owned, kernels::MatMul(*cur, *w, /*transpose_b=*/true,
                                   ctx->tracker, ctx->pool));
        cur = &owned;
        break;
      }
      case OpKind::kBiasAdd: {
        RELSERVE_ASSIGN_OR_RETURN(const Tensor* b,
                                  model.GetWeight(node.weight_name));
        RELSERVE_RETURN_NOT_OK(kernels::BiasAddInPlace(&owned, *b));
        break;
      }
      case OpKind::kRelu:
        kernels::ReluInPlace(&owned);
        break;
      case OpKind::kSoftmax:
        RELSERVE_RETURN_NOT_OK(kernels::SoftmaxRowsInPlace(&owned));
        break;
      default:
        return Status::InvalidArgument("unsupported op in interpreter");
    }
  }
  return owned;
}

struct Harness {
  Harness() : pool(&disk, 1024), tracker("bench") {
    ctx.tracker = &tracker;
    ctx.buffer_pool = &pool;
    ctx.block_rows = 64;
    ctx.block_cols = 64;
  }
  DiskManager disk;
  BufferPool pool;
  MemoryTracker tracker;
  ExecContext ctx;
};

Result<double> TimeRequests(int repeats, int iters,
                            const std::function<Status()>& fn) {
  RELSERVE_ASSIGN_OR_RETURN(
      double best, bench::TimeBest(repeats, [&]() -> Status {
        for (int i = 0; i < iters; ++i) RELSERVE_RETURN_NOT_OK(fn());
        return Status::OK();
      }));
  return best / iters;
}

Status RunSmallBatch(int repeats) {
  Harness h;
  RELSERVE_ASSIGN_OR_RETURN(Model model,
                            BuildFFNN("ffnn", {64, 128, 64, 10}, 3));
  const int iters = 500;
  std::printf("\nSmall-batch FFNN {64,128,64,10} (dispatch-bound)\n");
  bench::PrintRow({"Batch", "Interp(us)", "Unfused(us)", "Fused(us)",
                   "Speedup"});
  bench::PrintRule(5);
  const InferencePlan udf_plan = MakeForcedPlan(model, Repr::kUdf, 1);
  for (int64_t batch : {1, 4, 16}) {
    RELSERVE_ASSIGN_OR_RETURN(Tensor input,
                              workloads::GenBatch(batch, Shape{64}, 7));

    RELSERVE_ASSIGN_OR_RETURN(
        double interp, TimeRequests(repeats, iters, [&]() -> Status {
          return InterpretUdf(model, udf_plan, input, &h.ctx).status();
        }));

    PhysicalPlan::Options unfused_opts;
    unfused_opts.fuse_elementwise = false;
    RELSERVE_ASSIGN_OR_RETURN(
        PreparedModel unfused,
        PreparedModel::Prepare(&model,
                               MakeForcedPlan(model, Repr::kUdf, batch),
                               &h.ctx, unfused_opts));
    RELSERVE_ASSIGN_OR_RETURN(
        double plain, TimeRequests(repeats, iters, [&]() -> Status {
          return HybridExecutor::Run(unfused, input, &h.ctx).status();
        }));

    Timer compile_timer;
    RELSERVE_ASSIGN_OR_RETURN(
        PreparedModel prepared,
        PreparedModel::Prepare(&model,
                               MakeForcedPlan(model, Repr::kUdf, batch),
                               &h.ctx));
    const double compile_us = compile_timer.ElapsedSeconds() * 1e6;
    RELSERVE_ASSIGN_OR_RETURN(
        double fused, TimeRequests(repeats, iters, [&]() -> Status {
          return HybridExecutor::Run(prepared, input, &h.ctx).status();
        }));

    char interp_s[32], plain_s[32], fused_s[32], speedup[32];
    std::snprintf(interp_s, sizeof(interp_s), "%.2f", interp * 1e6);
    std::snprintf(plain_s, sizeof(plain_s), "%.2f", plain * 1e6);
    std::snprintf(fused_s, sizeof(fused_s), "%.2f", fused * 1e6);
    std::snprintf(speedup, sizeof(speedup), "%.2fx", interp / fused);
    bench::PrintRow({std::to_string(batch), interp_s, plain_s, fused_s,
                     speedup});
    bench::PrintBenchJson(
        "plan_compile",
        {{"arch", bench::JsonStr("ffnn_small_batch")},
         {"batch", std::to_string(batch)},
         {"interp_us", bench::JsonNum(interp * 1e6)},
         {"compiled_unfused_us", bench::JsonNum(plain * 1e6)},
         {"compiled_fused_us", bench::JsonNum(fused * 1e6)},
         {"compile_once_us", bench::JsonNum(compile_us)},
         {"fused_stages",
          std::to_string(prepared.physical().stages().size())},
         {"fused_ops",
          std::to_string(prepared.physical().num_fused_ops())}});
  }
  return Status::OK();
}

Status RunLargeBatchRelational(int repeats) {
  Harness h;
  RELSERVE_ASSIGN_OR_RETURN(Model model,
                            BuildFFNN("ffnn", {128, 256, 64, 10}, 3));
  const int64_t batch = 1024;
  RELSERVE_ASSIGN_OR_RETURN(Tensor input,
                            workloads::GenBatch(batch, Shape{128}, 9));
  std::printf(
      "\nLarge-batch relational FFNN {128,256,64,10} @ %lld "
      "(kernel-bound)\n",
      static_cast<long long>(batch));
  bench::PrintRow({"Config", "ms/req"});
  bench::PrintRule(2);

  double times[2];
  for (int fused = 0; fused < 2; ++fused) {
    PhysicalPlan::Options options;
    options.fuse_elementwise = fused == 1;
    RELSERVE_ASSIGN_OR_RETURN(
        PreparedModel prepared,
        PreparedModel::Prepare(
            &model, MakeForcedPlan(model, Repr::kRelational, batch),
            &h.ctx, options));
    RELSERVE_ASSIGN_OR_RETURN(
        times[fused], TimeRequests(repeats, 3, [&]() -> Status {
          return HybridExecutor::Run(prepared, input, &h.ctx).status();
        }));
    char ms[32];
    std::snprintf(ms, sizeof(ms), "%.3f", times[fused] * 1e3);
    bench::PrintRow({fused ? "relational fused" : "relational unfused",
                     ms});
  }
  bench::PrintBenchJson(
      "plan_compile",
      {{"arch", bench::JsonStr("ffnn_relational_large_batch")},
       {"batch", std::to_string(batch)},
       {"compiled_unfused_us", bench::JsonNum(times[0] * 1e6)},
       {"compiled_fused_us", bench::JsonNum(times[1] * 1e6)}});
  return Status::OK();
}

int Run() {
  const int repeats = bench::RepeatsFromEnv();
  std::printf(
      "Compile-once physical plans: per-request dispatch overhead\n"
      "interp = per-request graph walk, unfused/fused = compiled "
      "PhysicalPlan\n");
  Status s = RunSmallBatch(repeats);
  if (s.ok()) s = RunLargeBatchRelational(repeats);
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf(
      "\nExpected shape: fused <= interp at small batch (fewer "
      "dispatches,\nno intermediate passes); fusion is neutral at "
      "large batch where\nGEMM dominates.\n");
  return 0;
}

}  // namespace
}  // namespace relserve

int main() { return relserve::Run(); }
