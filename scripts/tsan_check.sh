#!/usr/bin/env bash
# ThreadSanitizer smoke check for the concurrent substrate.
#
# Builds the repo with -DRELSERVE_SANITIZE=thread into build-tsan/ and
# runs the three test binaries that exercise the morsel-driven
# ThreadPool, the concurrent BufferPool/DiskManager, and the parallel
# block operators. Any data race makes the binaries exit non-zero
# (halt_on_error=1), failing this script.
#
# Usage: scripts/tsan_check.sh [build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-tsan}"

cmake -B "$BUILD_DIR" -S . -DRELSERVE_SANITIZE=thread \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j \
    --target resource_test storage_test block_ops_test

export TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}"
for test in resource_test storage_test block_ops_test; do
    echo "== TSan: $test =="
    "$BUILD_DIR/tests/$test"
done
echo "TSan smoke check passed."
