#!/usr/bin/env bash
# Sanitizer smoke checks for the concurrent + SIMD kernel substrate.
#
# Leg 1 (ThreadSanitizer): builds with -DRELSERVE_SANITIZE=thread into
# build-tsan/ and runs the test binaries that exercise the
# morsel-driven ThreadPool, the concurrent BufferPool/DiskManager, the
# parallel block operators, and the packed GEMM layer (whose
# macro-tile ParallelFor shares one read-only B panel and per-worker A
# panels across pool threads). Any data race makes the binaries exit
# non-zero (halt_on_error=1), failing this script.
#
# Leg 2 (UndefinedBehaviorSanitizer): rebuilds with
# -DRELSERVE_SANITIZE=undefined into build-ubsan/ and runs the kernel
# and tensor tests. The micro-kernel layer leans on aligned loads,
# pointer arithmetic over packed panels, and a function-pointer
# dispatch table — exactly the constructs UBSan checks (misaligned
# access, OOB pointer arithmetic, bad function-pointer calls).
#
# Usage: scripts/tsan_check.sh [tsan-build-dir] [ubsan-build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-tsan}"
UBSAN_DIR="${2:-build-ubsan}"

# executor_test and serving_concurrency_test drive the compiled
# PhysicalPlan stage runner (shared StageStats atomics accumulate
# across concurrent requests and redeploy swaps). columnar_test runs
# the fragment-parallel ColumnarScan (morsels decode fragments
# concurrently into a shared output vector and accumulate atomic
# telemetry) plus the lock-free ScanCostModel EWMA.
# quantized_kernels_test runs the int8/sparse/top-k kernel arms under
# row-morsel parallelism (per-worker quantization scratch and
# selectors, asserting bit-identical output at every thread count)
# and their SIMD dispatch tables under UBSan. net_serving_test drives
# the epoll server's shared write path (scheduler threads encoding and
# flushing replies directly under per-connection write mutexes, both
# callback and completer-pool completion modes, inflight counters,
# drain-on-shutdown) under TSan, and the wire codec's memcpy-cursor
# frame parsing over torn and corrupted frames under UBSan.
# mvcc_test runs serve-while-ingest schedules (readers pinning
# snapshots against a committing writer: version clock, visibility
# map, and cache-fence atomics) under TSan; wal_recovery_test runs
# group-commit leader election across concurrent ingest threads under
# TSan, and the WAL codec's byte-cursor frame encode/decode over
# corrupted and torn logs under UBSan. dedup_test hammers the
# content-addressed PhysicalBlockIndex (concurrent intern/release
# refcounting, shared BlockStores, multi-tenant deploy/undeploy
# lifecycle) under TSan, and its CRC-then-memcmp byte comparison over
# raw page payloads under UBSan; serving_concurrency_test's churn case
# races Deploy/Undeploy against in-flight Predicts over shared blocks.
TSAN_TESTS=(resource_test storage_test dedup_test block_ops_test
            kernels_test executor_test serving_concurrency_test
            chaos_test columnar_test quantized_kernels_test
            net_serving_test mvcc_test wal_recovery_test)
UBSAN_TESTS=(kernels_test tensor_test block_ops_test executor_test
            plan_text_test chaos_test columnar_test dedup_test
            quantized_kernels_test net_serving_test wal_recovery_test)

cmake -B "$BUILD_DIR" -S . -DRELSERVE_SANITIZE=thread \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j --target "${TSAN_TESTS[@]}"

export TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}"
# The chaos harness replays deterministic randomized fault schedules;
# a reduced seed count keeps the sanitizer legs fast while still
# exercising every failpoint site under TSan/UBSan.
export RELSERVE_CHAOS_SEEDS="${RELSERVE_CHAOS_SEEDS:-8}"
for test in "${TSAN_TESTS[@]}"; do
    echo "== TSan: $test =="
    "$BUILD_DIR/tests/$test"
done

# Environment-activation smoke: a fresh process must arm failpoints
# from RELSERVE_FAILPOINTS alone (the grammar's end-to-end path). Run
# against the one test that asserts the armed site fires; the filter
# matters — earlier tests' teardown would disarm the env-armed site.
cmake --build "$BUILD_DIR" -j --target failpoint_test
echo "== TSan: failpoint_test (env activation smoke) =="
RELSERVE_FAILPOINTS="chaos.smoke=error(Unavailable),limit=2" \
    "$BUILD_DIR/tests/failpoint_test" --gtest_filter='*EnvActivationSmoke'

cmake -B "$UBSAN_DIR" -S . -DRELSERVE_SANITIZE=undefined \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$UBSAN_DIR" -j --target "${UBSAN_TESTS[@]}"

export UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1 ${UBSAN_OPTIONS:-}"
for test in "${UBSAN_TESTS[@]}"; do
    echo "== UBSan: $test =="
    "$UBSAN_DIR/tests/$test"
done
echo "Sanitizer smoke checks passed."
